// Command xbench regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic contest benchmarks:
//
//	-table 1   benchmark statistics (Table 1)
//	-table 2   ISPD 2005: HPWL / GP / DP for DREAMPlace-style baseline,
//	           Xplace, Xplace-NN (Table 2)
//	-table 3   ablation of the operator-level optimizations (Table 3)
//	-table 4   ISPD 2015: HPWL, OVFL-5, GP / DP (Table 4)
//	-figure 2  operator-extraction kernel trace (Figure 2a) and the
//	           hybrid autograd/numerical gradient check (Figure 2b)
//	-figure 3  FNO training curve, parameter count, resolution transfer
//	           and flip trick (Figure 3 / §4.3)
//	-figure r  the early-stage r = lambda|gradD|/|gradWL| trace (§3.1.4)
//	-spectral  v1-vs-v2 spectral engine ablation (DCT round trip and
//	           batched Poisson field evaluation, 256-1024 grids)
//	-all       everything
//
// GP seconds are SIMULATED seconds: parallel compute plus kernel-launch
// cost on the engine's simulated clock (see DESIGN.md); the -launch flag
// sets the per-launch cost in microseconds. Absolute numbers differ from
// the paper's RTX 3090 wall clock; the comparisons within each table are
// the reproduction target.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"xplace"
	"xplace/internal/backend"
	"xplace/internal/benchgen"
	"xplace/internal/dct"
	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/obs"
	"xplace/internal/placer"
)

var (
	scale2005 = flag.Float64("scale2005", 0.01, "ISPD 2005 benchmark scale")
	scale2015 = flag.Float64("scale2015", 0.01, "ISPD 2015 benchmark scale")
	seed      = flag.Int64("seed", 1, "generator / placer seed")
	workers   = flag.Int("workers", 0, "kernel engine workers (0 = NumCPU)")
	launchUS  = flag.Int("launch", 150, "simulated kernel-launch cost in microseconds")
	iters     = flag.Int("iters", 300, "fixed GP iterations for the ablation (table 3)")
	quick     = flag.Bool("quick", false, "run a 3-design subset of each suite")
	table     = flag.Int("table", 0, "regenerate one table (1-4)")
	figure    = flag.String("figure", "", "regenerate one figure (2, 3, r)")
	substrate = flag.Bool("substrate", false, "report execution-substrate stats (arena, per-op allocs)")
	spectral  = flag.Bool("spectral", false, "report the spectral-engine ablation (v1 vs v2 transforms)")
	all       = flag.Bool("all", false, "regenerate every table and figure")
	jsonOut   = flag.String("json", "", "run the bench trajectory and write its machine-readable record (BENCH_*.json) to this file")
	checkRec  = flag.String("check", "", "run the bench trajectory and compare it against this baseline record; non-zero exit on regression")
	checkTol  = flag.Float64("check-tol", 0.05, "HPWL regression tolerance for -check (0.05 = 5%)")
	benchNote = flag.String("note", "", "free-form note stored in the -json record")
	backendN  = flag.String("backend", "", "compute backend for the table/figure runs: float64 | float32 (default follows XPLACE_BACKEND; the pinned trajectory configs set their own)")
	strategyN = flag.String("strategy", "", "GP strategy for the Xplace table rows: nesterov | lbub (the pinned trajectory configs set their own)")
	modelPath = flag.String("model", "", "trained field-model artifact for the Xplace-NN column and the nn-blend trajectory config (default: train a small FNO in-process)")
)

// runStrategy is the parsed -strategy choice applied to the Xplace rows of
// the flow tables and the substrate report (the default Strategy zero
// value when the flag is unset).
var runStrategy xplace.Strategy

// defaultPlacement is xplace.DefaultPlacement with the -strategy override
// applied.
func defaultPlacement() xplace.PlacementOptions {
	o := xplace.DefaultPlacement()
	o.Strategy = runStrategy
	return o
}

func engine() *kernel.Engine {
	return kernel.New(kernel.Options{
		Workers:        *workers,
		LaunchOverhead: time.Duration(*launchUS) * time.Microsecond,
	})
}

func main() {
	flag.Parse()
	if *backendN != "" {
		if _, err := xplace.LookupBackend(*backendN); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(2)
		}
		// The tables and figures build many configs through many helpers;
		// rather than threading the choice through each one, set the
		// process default every backend.Resolve(nil) call site follows.
		// The pinned trajectory configs are unaffected: they set an
		// explicit Backend so the gate never depends on the environment.
		os.Setenv(backend.EnvVar, *backendN)
	}
	if st, err := xplace.ParseStrategy(*strategyN); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(2)
	} else {
		runStrategy = st
	}
	if *jsonOut != "" || *checkRec != "" {
		benchTrajectory()
		return
	}
	if !*all && *table == 0 && *figure == "" && !*substrate && !*spectral {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *table == 1 {
		table1()
	}
	if *all || *table == 2 {
		table2()
	}
	if *all || *table == 3 {
		table3()
	}
	if *all || *table == 4 {
		table4()
	}
	if *all || *figure == "2" {
		figure2()
	}
	if *all || *figure == "3" {
		figure3()
	}
	if *all || *figure == "r" {
		figureR()
	}
	if *all || *substrate {
		substrateReport()
	}
	if *all || *spectral {
		spectralReport()
	}
}

// ----------------------------------------------------------- bench trajectory

// Bench-trajectory constants. They are pinned — bench, scale, iteration
// count and worker count all feed the operator schedule, and the checked-in
// BENCH_*.json baseline plus the CI bench-smoke lane assume bit-identical
// runs (same chunk boundaries -> same FP sums -> same OS skip decisions ->
// same launch counts).
const (
	trajBench   = "adaptec1"
	trajScale   = 0.004
	trajIters   = 60
	trajWorkers = 4
)

// trajF32Tol is the in-trajectory float32-vs-float64 HPWL gate: at the
// pinned iteration count the fast-path trajectory must stay within this
// relative band of the reference (mid-convergence trajectories diverge
// more than converged ones, so this is looser than the 1% quality gates
// the to-convergence tests apply).
const trajF32Tol = 0.05

// In-trajectory cross-strategy band: at the pinned round count the LB/UB
// oracle's rough-legalized HPWL sits well above the mid-convergence
// gradient flow (the flow's cells have not spread yet — overflow ~0.8 —
// while the UB is already fully binned; measured ratio ~3.8). The band is
// deliberately coarse: the tight quality gate is the to-convergence oracle
// test (make test-oracle); this one only catches a strategy collapsing or
// exploding inside the bench lane.
const (
	trajLBUBRatioHigh = 6.0
	trajLBUBRatioLow  = 2.0
)

// In-trajectory NN-blend band: at the pinned iteration count the blended
// trajectory sits close to the numerical reference (measured ~1.8% below
// it — the predicted field is a smooth low-frequency stand-in, not a
// different objective). The band is coarse on purpose: the tight quality
// gate is the to-convergence test in the nn lane (make test-nn); this one
// catches the blend path breaking inside the bench lane.
const trajNNTol = 0.10

// trajConfigs are the placer configurations the trajectory compares. The
// first three reproduce the paper's operator ablation: the DREAMPlace-style
// autograd baseline, Xplace with operator combination (OC) disabled, and
// full Xplace — the launch-count gap between the last two is the OC saving
// (§3.1.1) made machine-checkable. The remaining four isolate the compute-
// backend fast path: float32 precision alone, spectral truncation alone,
// the adaptive bin grid alone, and all three together. The last two track
// the alternative placement paths on the same pinned design: the LB/UB
// alternation strategy (the CI quality oracle) and the Xplace-NN blended
// flow (σ(ω)-weighted predicted field in the early stage, via the pinned
// in-process FNO or -model). Every config pins its Backend explicitly so
// the record never depends on XPLACE_BACKEND.
func trajConfigs() []struct {
	name string
	opts xplace.PlacementOptions
} {
	ref := func() xplace.PlacementOptions {
		o := xplace.DefaultPlacement()
		o.Backend = xplace.Float64Backend()
		return o
	}
	base := xplace.BaselinePlacement()
	base.Backend = xplace.Float64Backend()
	unfused := ref()
	unfused.OperatorCombination = false
	f32 := xplace.DefaultPlacement()
	f32.Backend = xplace.Float32Backend()
	trunc := ref()
	trunc.SpectralTruncation = true
	adaptive := ref()
	adaptive.AdaptiveGrid = true
	fast := xplace.DefaultPlacement()
	fast.Backend = xplace.Float32Backend()
	fast.SpectralTruncation = true
	fast.AdaptiveGrid = true
	lbub := ref()
	lbub.Strategy = xplace.StrategyLBUB
	nn := ref()
	nn.Predictor = fieldPredictor()
	return []struct {
		name string
		opts xplace.PlacementOptions
	}{
		{"baseline", base},
		{"xplace-unfused", unfused},
		{"xplace", ref()},
		{"xplace-f32", f32},
		{"xplace-trunc", trunc},
		{"xplace-adaptive", adaptive},
		{"xplace-fast", fast},
		{"xplace-lbub", lbub},
		{"xplace-nn", nn},
	}
}

// benchTrajectory runs the pinned three-config trajectory and emits the
// machine-readable record (-json) and/or gates it against a checked-in
// baseline (-check): schema validation, HPWL regression beyond -check-tol,
// and any launch-count drift at equal iterations all fail the run.
func benchTrajectory() {
	d, err := xplace.GenerateBenchmark(trajBench, trajScale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
	rec := xplace.BenchRecord{Schema: obs.BenchSchema, Note: *benchNote}
	for _, c := range trajConfigs() {
		e := kernel.New(kernel.Options{
			Workers:        trajWorkers,
			LaunchOverhead: time.Duration(*launchUS) * time.Microsecond,
		})
		opts := c.opts
		opts.Seed = *seed
		p, err := placer.New(d, e, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		res, err := p.RunIterations(trajIters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		rec.Runs = append(rec.Runs, xplace.BenchRun{
			Config:     c.name,
			Bench:      trajBench,
			Backend:    opts.Backend.Name(),
			Scale:      trajScale,
			Seed:       *seed,
			Workers:    trajWorkers,
			LaunchUS:   *launchUS,
			Iterations: res.Iterations,
			HPWL:       res.HPWL,
			Overflow:   res.Overflow,
			WallMS:     float64(res.WallTime.Microseconds()) / 1000,
			SimMS:      float64(res.SimTime.Microseconds()) / 1000,
			Launches:   res.Stats.Launches,
			Syncs:      res.Stats.Syncs,
			ArenaPeak:  res.Stats.Arena.Peak,
		})
		fmt.Printf("%-16s HPWL %.6g  ovfl %.3f  launches %d  sim %.1fms\n",
			c.name, res.HPWL, res.Overflow, res.Stats.Launches,
			float64(res.SimTime.Microseconds())/1000)
		p.Close()
		e.Close()
	}

	if fused, ok := rec.Run("xplace"); ok {
		if unfused, ok := rec.Run("xplace-unfused"); ok && fused.Launches >= unfused.Launches {
			fmt.Fprintf(os.Stderr, "xbench: OC regression: fused config launched %d kernels, unfused %d — operator combination saved nothing\n",
				fused.Launches, unfused.Launches)
			os.Exit(1)
		}
		// In-trajectory precision gate: the float32 fast path must track
		// the float64 reference within trajF32Tol at the pinned iteration
		// count, in both directions — large drift either way means the
		// reduced-precision pipeline broke, not that it got lucky.
		if f32, ok := rec.Run("xplace-f32"); ok {
			if rel := abs(f32.HPWL-fused.HPWL) / fused.HPWL; rel > trajF32Tol {
				fmt.Fprintf(os.Stderr, "xbench: float32 drift: HPWL %.6g vs float64 %.6g (%.1f%% > %.0f%%)\n",
					f32.HPWL, fused.HPWL, rel*100, trajF32Tol*100)
				os.Exit(1)
			}
		}
		// NN-blend gate: the blended trajectory must track the numerical
		// reference within the coarse band — drift means the σ(ω) blend or
		// the predictor itself broke.
		if nnRun, ok := rec.Run("xplace-nn"); ok {
			if rel := abs(nnRun.HPWL-fused.HPWL) / fused.HPWL; rel > trajNNTol {
				fmt.Fprintf(os.Stderr, "xbench: nn-blend drift: HPWL %.6g vs numerical %.6g (%.1f%% > %.0f%%)\n",
					nnRun.HPWL, fused.HPWL, rel*100, trajNNTol*100)
				os.Exit(1)
			}
		}
		// Cross-strategy gate: the LB/UB oracle runs a structurally
		// different algorithm on the same pinned design; a ratio outside
		// the coarse band means one of the two placers broke.
		if lbub, ok := rec.Run("xplace-lbub"); ok {
			if ratio := lbub.HPWL / fused.HPWL; ratio > trajLBUBRatioHigh || ratio < trajLBUBRatioLow {
				fmt.Fprintf(os.Stderr, "xbench: cross-strategy drift: lbub HPWL %.6g vs xplace %.6g (ratio %.2f outside [%.1f, %.1f])\n",
					lbub.HPWL, fused.HPWL, ratio, trajLBUBRatioLow, trajLBUBRatioHigh)
				os.Exit(1)
			}
		}
	}

	rec.Micro = poissonMicro()

	if *jsonOut != "" {
		fh, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		if err := obs.WriteBenchRecord(fh, rec); err != nil {
			fh.Close()
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		if err := fh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonOut)
	}
	if *checkRec != "" {
		fh, err := os.Open(*checkRec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		baseline, err := obs.ReadBenchRecord(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		if err := obs.CompareBenchRecords(baseline, rec, *checkTol); err != nil {
			fmt.Fprintf(os.Stderr, "xbench: bench-smoke gate failed vs %s:\n%v\n", *checkRec, err)
			os.Exit(1)
		}
		fmt.Printf("bench-smoke gate passed vs %s (tol %.0f%%)\n", *checkRec, *checkTol*100)
	}
}

// poissonMicro times the 512-grid Poisson solve (the GP hot loop's
// dominant spectral kernel) across the backend/truncation ablation:
// float64 vs float32 element storage, full spectrum vs the early-stage
// half-band truncation. Wall times are machine-dependent — the smoke gate
// ignores them — but the ratios document where the fast path's time goes.
func poissonMicro() []obs.BenchMicro {
	const n = 512
	var out []obs.BenchMicro
	for _, be := range []xplace.ComputeBackend{xplace.Float64Backend(), xplace.Float32Backend()} {
		e := kernel.New(kernel.Options{Workers: trajWorkers})
		grid := geom.NewGrid(geom.Rect{Hx: 1, Hy: 1}, n, n)
		s := field.NewSystemOn(grid, e, be)
		for i := range s.Total {
			s.Total[i] = float64(i%23)*0.07 - 0.5
		}
		for _, variant := range []string{"full", "truncated"} {
			if variant == "truncated" {
				s.SetTruncation(n/2, n/2)
			}
			s.SolvePoisson(e) // warm the plans and scratch
			// Best of five 100ms windows: scheduler noise only ever slows a
			// window down, so the minimum is the stable estimate.
			ms := math.Inf(1)
			for w := 0; w < 5; w++ {
				reps := 0
				start := time.Now()
				for time.Since(start) < 100*time.Millisecond {
					s.SolvePoisson(e)
					reps++
				}
				if v := float64(time.Since(start).Microseconds()) / 1000 / float64(reps); v < ms {
					ms = v
				}
			}
			out = append(out, obs.BenchMicro{
				Name: "poisson512", Backend: be.Name(), Variant: variant, Grid: n, MS: ms,
			})
			fmt.Printf("%-16s %s/%s  %.2f ms/solve\n", "poisson512", be.Name(), variant, ms)
		}
		s.Release(e)
		e.Close()
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// --------------------------------------------------------------- spectral

// spectralReport times the two spectral engines (DESIGN.md §5): the v1
// mirrored length-2N FFT with per-column gather against the v2 Makhoul
// real-even kernels with the tiled column transpose, on the forward+inverse
// round trip and on the batched Poisson field evaluation.
func spectralReport() {
	fmt.Println("== Spectral engine ablation: v1 (mirrored FFT) vs v2 (Makhoul + tiled) ==")
	fmt.Println("(wall time per call, single-threaded; the GP hot path runs the")
	fmt.Println(" field evaluation once per iteration)")
	fmt.Println()
	fmt.Printf("%-8s %6s | %14s %14s %8s\n", "op", "grid", "v1 ms", "v2 ms", "v1/v2")
	timeOp := func(f func()) float64 {
		f() // warm scratch
		reps := 1
		start := time.Now()
		for time.Since(start) < 200*time.Millisecond {
			f()
			reps++
		}
		return float64(time.Since(start).Microseconds()) / 1000 / float64(reps)
	}
	for _, n := range []int{256, 512, 1024} {
		f := make([]float64, n*n)
		for i := range f {
			f[i] = float64(i%17) * 0.1
		}
		coef := make([]float64, n*n)
		out := make([]float64, n*n)
		ex := make([]float64, n*n)
		ey := make([]float64, n*n)
		sx := make([]float64, n)
		sy := make([]float64, n)
		for i := range sx {
			sx[i] = float64(i) / float64(n)
			sy[i] = float64(i) / float64(n)
		}
		p1, p2 := dct.NewPlanV1(n, n), dct.NewPlan(n, n)
		rt1 := timeOp(func() { p1.DCT2(f, coef, nil); p1.EvalCosCos(coef, out, nil) })
		rt2 := timeOp(func() { p2.DCT2(f, coef, nil); p2.EvalCosCos(coef, out, nil) })
		fmt.Printf("%-8s %6d | %14.2f %14.2f %7.2fx\n", "dct+idct", n, rt1, rt2, rt1/rt2)
		fe1 := timeOp(func() { p1.EvalPotentialField(coef, sx, sy, out, ex, ey, nil) })
		fe2 := timeOp(func() { p2.EvalPotentialField(coef, sx, sy, out, ex, ey, nil) })
		fmt.Printf("%-8s %6d | %14.2f %14.2f %7.2fx\n", "field", n, fe1, fe2, fe1/fe2)
	}
	fmt.Println()
}

// -------------------------------------------------------------- substrate

// substrateReport runs a short GP on each engine mode and prints the
// execution-substrate accounting: launches, buffer-arena traffic (hits /
// misses / peak bytes), and per-op arena checkout counts. The Xplace path
// is expected to show zero steady-state arena traffic (all hot-loop
// scratch is persistent), while the autograd baseline checks backward
// scratch out of the arena every iteration.
func substrateReport() {
	fmt.Println("== Execution substrate: worker pool + buffer arena ==")
	d, _ := xplace.GenerateBenchmark("adaptec1", *scale2005, *seed)
	for _, mode := range []struct {
		name string
		opts xplace.PlacementOptions
	}{
		{"Xplace", defaultPlacement()},
		{"DREAMPlace-style baseline", xplace.BaselinePlacement()},
	} {
		e := engine()
		opts := mode.opts
		opts.Seed = *seed
		p, err := placer.New(d, e, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "substrate:", err)
			return
		}
		if _, err := p.RunIterations(50); err != nil {
			fmt.Fprintln(os.Stderr, "substrate:", err)
			return
		}
		fmt.Printf("\n-- %s (50 iters, %d workers) --\n%s", mode.name, e.Workers(), e.Stats())
		e.Close()
	}
	fmt.Println()
}

func subset(specs []benchgen.Spec, n int) []benchgen.Spec {
	if !*quick || len(specs) <= n {
		return specs
	}
	return specs[:n]
}

// ---------------------------------------------------------------- table 1

func table1() {
	fmt.Println("== Table 1: Benchmarks Statistics ==")
	fmt.Printf("(published full-size counts; generated at scale %g / %g)\n\n", *scale2005, *scale2015)
	fmt.Printf("%-10s %-16s %10s %10s %12s %12s\n",
		"suite", "design", "#cells", "#nets", "#cells(gen)", "#nets(gen)")
	emit := func(specs []benchgen.Spec, scale float64) {
		for _, s := range specs {
			d := benchgen.Generate(s, scale, *seed)
			st := d.Stats()
			fmt.Printf("%-10s %-16s %10d %10d %12d %12d\n",
				s.Suite, s.Name, s.Cells, s.Nets, st.Movable, st.Nets)
		}
	}
	emit(subset(benchgen.Catalog2005(), 3), *scale2005)
	emit(subset(benchgen.Catalog2015(), 3), *scale2015)
	fmt.Println()
}

// ---------------------------------------------------------------- table 2

type flowRow struct {
	hpwl   float64
	gpSec  float64 // simulated
	dpSec  float64 // wall: legalization + detailed placement
	ovfl5  float64
	failed bool
}

func runFlow(d *xplace.Design, opts xplace.PlacementOptions, route *xplace.RouteOptions) flowRow {
	fo := xplace.FlowOptions{
		Placement: opts,
		Legalizer: xplace.LegalizeTetris,
		Engine:    engine(),
		Route:     route,
	}
	fr, err := xplace.RunFlow(d, fo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flow failed: %v\n", err)
		return flowRow{failed: true}
	}
	row := flowRow{
		hpwl:  fr.HPWLFinal,
		gpSec: fr.GPSim.Seconds(),
		dpSec: (fr.LGTime + fr.DPTime).Seconds(),
	}
	if fr.Route != nil {
		row.ovfl5 = fr.Route.Top5Overflow
	}
	return row
}

func trainSmallFNO() *xplace.Model {
	cfg := xplace.ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: *seed}
	m := xplace.NewModel(cfg)
	samples := xplace.GenerateTrainingSamples(24, 32, 32, *seed)
	m.Train(samples, xplace.TrainOptions{Epochs: 25, LR: 2e-3, Seed: *seed})
	return m
}

var (
	predOnce sync.Once
	pred     xplace.FieldPredictor
)

// fieldPredictor returns the predictor behind the Xplace-NN column and
// the nn-blend trajectory config: the -model artifact when one is given,
// else a small FNO trained in-process with pinned hyperparameters — fully
// deterministic at a given -seed, which is what lets the nn-blend config
// live in the checked-in BENCH_*.json baseline.
func fieldPredictor() xplace.FieldPredictor {
	predOnce.Do(func() {
		if *modelPath != "" {
			fh, err := os.Open(*modelPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xbench:", err)
				os.Exit(1)
			}
			defer fh.Close()
			m, err := xplace.LoadModel(fh)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbench: model %s: %v\n", *modelPath, err)
				os.Exit(1)
			}
			pred = xplace.NewFieldPredictor(m)
			return
		}
		fmt.Println("training the small in-process FNO (supply one with -model to skip)...")
		pred = xplace.NewFieldPredictor(trainSmallFNO())
	})
	return pred
}

func table2() {
	fmt.Println("== Table 2: HPWL and runtime on the ISPD 2005 benchmarks ==")
	fmt.Println("(HPWL after LG+DP; GP/s simulated, DP/s wall; paper shape:")
	fmt.Println(" Xplace ~1.6x GP speedup over DREAMPlace at equal-or-better HPWL,")
	fmt.Println(" Xplace-NN ~1 permille better HPWL than Xplace)")
	fmt.Println()
	pred := fieldPredictor()

	specs := subset(benchgen.Catalog2005(), 3)
	fmt.Printf("\n%-10s | %12s %8s %8s | %12s %8s %8s | %12s %8s %8s\n",
		"", "DREAMPlace", "GP/s", "DP/s", "Xplace", "GP/s", "DP/s", "Xplace-NN", "GP/s", "DP/s")
	fmt.Printf("%-10s | %12s %8s %8s | %12s %8s %8s | %12s %8s %8s\n",
		"design", "HPWL", "", "", "HPWL", "", "", "HPWL", "", "")
	var sum [3]flowRow
	for _, s := range specs {
		d := benchgen.Generate(s, *scale2005, *seed)

		base := xplace.BaselinePlacement()
		base.Seed = *seed
		rb := runFlow(d, base, nil)

		xp := defaultPlacement()
		xp.Seed = *seed
		rx := runFlow(d, xp, nil)

		xn := xplace.DefaultPlacement()
		xn.Seed = *seed
		xn.Predictor = pred
		rn := runFlow(d, xn, nil)

		fmt.Printf("%-10s | %12.4g %8.2f %8.2f | %12.4g %8.2f %8.2f | %12.4g %8.2f %8.2f\n",
			s.Name, rb.hpwl, rb.gpSec, rb.dpSec, rx.hpwl, rx.gpSec, rx.dpSec, rn.hpwl, rn.gpSec, rn.dpSec)
		for i, r := range []flowRow{rb, rx, rn} {
			sum[i].hpwl += r.hpwl
			sum[i].gpSec += r.gpSec
			sum[i].dpSec += r.dpSec
		}
	}
	fmt.Printf("%-10s | %12.4g %8.2f %8.2f | %12.4g %8.2f %8.2f | %12.4g %8.2f %8.2f\n",
		"Sum", sum[0].hpwl, sum[0].gpSec, sum[0].dpSec,
		sum[1].hpwl, sum[1].gpSec, sum[1].dpSec,
		sum[2].hpwl, sum[2].gpSec, sum[2].dpSec)
	fmt.Printf("%-10s | %12.4f %8.3f %8.3f | %12.4f %8.3f %8.3f | %12.4f %8.3f %8.3f\n\n",
		"Ratio",
		sum[0].hpwl/sum[1].hpwl, sum[0].gpSec/sum[1].gpSec, sum[0].dpSec/sum[1].dpSec,
		1.0, 1.0, 1.0,
		sum[2].hpwl/sum[1].hpwl, sum[2].gpSec/sum[1].gpSec, sum[2].dpSec/sum[1].dpSec)
}

// ---------------------------------------------------------------- table 3

func table3() {
	fmt.Println("== Table 3: Ablation of the operator-level optimizations ==")
	fmt.Printf("(simulated time per GP iteration over %d fixed iterations;\n", *iters)
	fmt.Println(" Xplace = 100%; paper shape: none 159%, +OR 113%, +OC 108%,")
	fmt.Println(" +OE 104%, DREAMPlace 296%)")
	fmt.Println()
	type cfg struct {
		name           string
		or, oc, oe, os bool
		mode           placer.Mode
	}
	cfgs := []cfg{
		{"none", false, false, false, false, placer.ModeXplace},
		{"+OR", true, false, false, false, placer.ModeXplace},
		{"+OR+OC", true, true, false, false, placer.ModeXplace},
		{"+OR+OC+OE", true, true, true, false, placer.ModeXplace},
		{"Xplace(all)", true, true, true, true, placer.ModeXplace},
		{"DREAMPlace", false, false, false, false, placer.ModeBaseline},
	}
	specs := subset(benchgen.Catalog2005(), 3)
	perIter := make(map[string][]float64) // cfg -> per-design ms/iter
	for _, s := range specs {
		d := benchgen.Generate(s, *scale2005, *seed)
		for _, c := range cfgs {
			opts := placer.Defaults()
			opts.Mode = c.mode
			opts.OperatorReduction = c.or
			opts.OperatorCombination = c.oc
			opts.OperatorExtraction = c.oe
			opts.OperatorSkipping = c.os
			opts.Seed = *seed
			e := engine()
			p, err := placer.New(d, e, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "table3:", err)
				return
			}
			res, err := p.RunIterations(*iters)
			if err != nil {
				fmt.Fprintln(os.Stderr, "table3:", err)
				return
			}
			perIter[c.name] = append(perIter[c.name],
				res.SimTime.Seconds()*1000/float64(res.Iterations))
		}
	}
	header := fmt.Sprintf("%-12s", "config")
	for _, s := range specs {
		header += fmt.Sprintf(" %10s", s.Name)
	}
	fmt.Println(header + "        Avg")
	printRow := func(name string, ratio bool) {
		row := fmt.Sprintf("%-12s", name)
		var avg float64
		for i := range perIter[name] {
			v := perIter[name][i]
			if ratio {
				v = 100 * v / perIter["Xplace(all)"][i]
				row += fmt.Sprintf(" %9.0f%%", v)
			} else {
				row += fmt.Sprintf(" %10.3f", v)
			}
			avg += v
		}
		avg /= float64(len(perIter[name]))
		if ratio {
			row += fmt.Sprintf(" %9.0f%%", avg)
		} else {
			row += fmt.Sprintf(" %10.3f", avg)
		}
		fmt.Println(row)
	}
	for _, c := range cfgs {
		printRow(c.name, true)
	}
	fmt.Println()
	fmt.Println("absolute ms/iter:")
	printRow("Xplace(all)", false)
	printRow("DREAMPlace", false)
	fmt.Println()
}

// ---------------------------------------------------------------- table 4

func table4() {
	fmt.Println("== Table 4: HPWL, OVFL-5 and runtime on the ISPD 2015 benchmarks ==")
	fmt.Println("(fence regions removed; paper shape: Xplace ~2.8x GP speedup,")
	fmt.Println(" equal HPWL and OVFL-5)")
	fmt.Println()
	specs := subset(benchgen.Catalog2015(), 3)
	route := &xplace.RouteOptions{Grid: 64, Capacity: 3}
	fmt.Printf("%-16s | %12s %8s %8s %8s | %12s %8s %8s %8s\n",
		"", "DREAMPlace", "OVFL-5", "GP/s", "DP/s", "Xplace", "OVFL-5", "GP/s", "DP/s")
	fmt.Printf("%-16s | %12s %8s %8s %8s | %12s %8s %8s %8s\n",
		"design", "HPWL", "", "", "", "HPWL", "", "", "")
	var sum [2]flowRow
	for _, s := range specs {
		d := benchgen.Generate(s, *scale2015, *seed)
		name := s.Name
		if s.Fence {
			name += "+" // dagger: fence constraints removed
		}
		base := xplace.BaselinePlacement()
		base.Seed = *seed
		rb := runFlow(d, base, route)
		xp := defaultPlacement()
		xp.Seed = *seed
		rx := runFlow(d, xp, route)
		fmt.Printf("%-16s | %12.4g %8.2f %8.2f %8.2f | %12.4g %8.2f %8.2f %8.2f\n",
			name, rb.hpwl, rb.ovfl5, rb.gpSec, rb.dpSec, rx.hpwl, rx.ovfl5, rx.gpSec, rx.dpSec)
		for i, r := range []flowRow{rb, rx} {
			sum[i].hpwl += r.hpwl
			sum[i].ovfl5 += r.ovfl5
			sum[i].gpSec += r.gpSec
			sum[i].dpSec += r.dpSec
		}
	}
	fmt.Printf("%-16s | %12.4g %8.2f %8.2f %8.2f | %12.4g %8.2f %8.2f %8.2f\n",
		"Sum", sum[0].hpwl, sum[0].ovfl5, sum[0].gpSec, sum[0].dpSec,
		sum[1].hpwl, sum[1].ovfl5, sum[1].gpSec, sum[1].dpSec)
	ovflRatio := 1.0
	if sum[1].ovfl5 > 0 {
		ovflRatio = sum[0].ovfl5 / sum[1].ovfl5
	}
	fmt.Printf("%-16s | %12.4f %8.3f %8.3f %8.3f | %12.4f %8.3f %8.3f %8.3f\n\n",
		"Ratio",
		sum[0].hpwl/sum[1].hpwl, ovflRatio,
		sum[0].gpSec/sum[1].gpSec, sum[0].dpSec/sum[1].dpSec,
		1.0, 1.0, 1.0, 1.0)
}

// --------------------------------------------------------------- figure 2

func figure2() {
	fmt.Println("== Figure 2(a): operator extraction dataflow ==")
	fmt.Println("(kernel trace of one GP iteration; with OE the cell density map")
	fmt.Println(" is scattered ONCE and reused for the total map and OVFL)")
	fmt.Println()
	d, _ := xplace.GenerateBenchmark("adaptec1", 0.005, *seed)
	for _, oe := range []bool{true, false} {
		e := kernel.New(kernel.Options{Workers: *workers, Trace: true})
		opts := placer.Defaults()
		opts.OperatorExtraction = oe
		opts.OperatorSkipping = false
		p, err := placer.New(d, e, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure2:", err)
			return
		}
		if _, err := p.RunIterations(1); err != nil {
			fmt.Fprintln(os.Stderr, "figure2:", err)
			return
		}
		var densOps []string
		for _, op := range e.Trace() {
			if strings.HasPrefix(op, "density.") || op == "poisson.energy" {
				densOps = append(densOps, op)
			}
		}
		fmt.Printf("OE=%v density-path kernels: %s\n", oe, strings.Join(densOps, " -> "))
	}
	fmt.Println()
	fmt.Println("== Figure 2(b): hybrid numerical + autograd gradients ==")
	fmt.Println("(a user-defined loss differentiated by the autograd engine is")
	fmt.Println(" accumulated onto the numerically computed placement gradient;")
	fmt.Println(" exercised by placer.Options.ExtraGradient — see")
	fmt.Println(" TestExtraGradientHook and the tensor package's custom-op tests)")
	fmt.Println()
}

// --------------------------------------------------------------- figure 3

func figure3() {
	fmt.Println("== Figure 3 / §4.3: the Fourier neural operator ==")
	m := xplace.NewModel(xplace.DefaultModelConfig())
	fmt.Printf("paper-scale model parameters: %d (paper: 471k, '60%% of U-Net')\n\n", m.ParamCount())

	small := xplace.ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: *seed}
	sm := xplace.NewModel(small)
	train := xplace.GenerateTrainingSamples(24, 16, 16, *seed)
	testLo := xplace.GenerateTrainingSamples(8, 16, 16, *seed+100)
	testHi := xplace.GenerateTrainingSamples(8, 32, 32, *seed+200)

	fmt.Println("training curve (rel-L2, small config for speed):")
	sm.Train(train, xplace.TrainOptions{
		Epochs: 30, LR: 2e-3, Seed: *seed,
		Log: func(ep int, loss float64) {
			if ep%5 == 0 || ep == 29 {
				fmt.Printf("  epoch %3d  loss %.4f\n", ep, loss)
			}
		},
	})
	fmt.Printf("\nheld-out 16x16 x-field rel-L2:          %.3f\n", sm.Evaluate(testLo))
	fmt.Printf("resolution transfer to 32x32:           %.3f (model never saw 32x32)\n", sm.Evaluate(testHi))
	fmt.Printf("y-field via the flip trick:             %.3f\n", sm.EvaluateFlipY(testLo))
	fmt.Println()
}

// --------------------------------------------------------------- figure r

func figureR() {
	fmt.Println("== §3.1.4: r = lambda*|gradD| / |gradWL| over the GP run ==")
	fmt.Println("(ultra-small early — justifying operator skipping — then rising)")
	fmt.Println()
	d, _ := xplace.GenerateBenchmark("adaptec1", 0.005, *seed)
	opts := placer.Defaults()
	opts.OperatorSkipping = false // record the true r every iteration
	opts.Seed = *seed
	p, err := placer.New(d, engine(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figureR:", err)
		return
	}
	res, err := p.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figureR:", err)
		return
	}
	hist := res.Recorder.History()
	maxR := 0.0
	for _, rec := range hist {
		if rec.R > maxR {
			maxR = rec.R
		}
	}
	step := len(hist) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(hist); i += step {
		rec := hist[i]
		bar := int(40 * rec.R / maxR)
		fmt.Printf("iter %4d  r=%-10.4g %s\n", rec.Iter, rec.R, strings.Repeat("#", bar))
	}
	below := 0
	for _, rec := range hist[:min(100, len(hist))] {
		if rec.R < 0.01 {
			below++
		}
	}
	fmt.Printf("\niterations with r < 0.01 among the first 100: %d\n\n", below)
	_ = sort.Float64s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
