// Command xplace runs the full placement flow on a design: global
// placement (Xplace fast path or the DREAMPlace-style baseline),
// legalization, detailed placement and optional routability scoring.
//
// Input is either a synthetic contest benchmark (-bench, see -list) or a
// design file (-in, format autodetected: bookshelf .aux or DEF with -lef).
// The placed result can be written back as a bookshelf .pl (-out).
//
// Examples:
//
//	xplace -bench adaptec1 -scale 0.02
//	xplace -in design.aux -legalizer abacus -out placed.pl
//	xplace -in design.def -lef cells.lef
//	xplace -bench fft_1 -mode baseline -route
//	xplace -bench adaptec1 -trace out.json   # Chrome about:tracing JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"xplace"
)

func main() {
	var (
		bench     = flag.String("bench", "", "synthetic benchmark name (see -list)")
		scale     = flag.Float64("scale", 0.02, "benchmark scale factor")
		seed      = flag.Int64("seed", 1, "generator / placer seed")
		in        = flag.String("in", "", "design input file (bookshelf .aux or DEF; format autodetected)")
		lef       = flag.String("lef", "", "LEF cell library (required for DEF inputs)")
		aux       = flag.String("aux", "", "bookshelf .aux input file (deprecated alias of -in)")
		mode      = flag.String("mode", "xplace", "GP engine: xplace | baseline | xplace-nn")
		backendN  = flag.String("backend", "", "compute backend: float64 (exact reference) | float32 (fast path); default follows XPLACE_BACKEND")
		strategy  = flag.String("strategy", "", "GP strategy: nesterov (default gradient flow) | lbub (LB/UB alternation draft tier)")
		effort    = flag.Int("effort", 0, "lbub effort preset 1..9 (0 = default)")
		legalizer = flag.String("legalizer", "tetris", "legalizer: tetris | abacus")
		grid      = flag.Int("grid", 0, "density grid size (power of two, 0 = auto)")
		maxIter   = flag.Int("max-iter", 0, "GP iteration cap (0 = default)")
		target    = flag.Float64("density", 1.0, "target density")
		workers   = flag.Int("workers", 0, "kernel engine workers (0 = NumCPU)")
		route     = flag.Bool("route", false, "score routability (OVFL-5) after placement")
		model     = flag.String("model", "", "trained field-model artifact to blend into early GP (implied by -mode xplace-nn)")
		out       = flag.String("out", "", "write placed .pl file")
		svg       = flag.String("svg", "", "write placement SVG image")
		trace     = flag.String("trace", "", "write an operator/kernel trace of the run as Chrome trace_event JSON (load in about:tracing or Perfetto)")
		csv       = flag.Bool("csv", false, "dump per-iteration metrics CSV to stdout")
		stats     = flag.Bool("stats", false, "print GP engine stats (launches, arena, per-op allocs)")
		list      = flag.Bool("list", false, "list available synthetic benchmarks")
	)
	flag.Parse()

	if *list {
		fmt.Println("ISPD 2005:")
		for _, s := range xplace.Catalog2005() {
			fmt.Printf("  %-16s %8d cells %8d nets\n", s.Name, s.Cells, s.Nets)
		}
		fmt.Println("ISPD 2015:")
		for _, s := range xplace.Catalog2015() {
			fmt.Printf("  %-16s %8d cells %8d nets\n", s.Name, s.Cells, s.Nets)
		}
		return
	}

	if *in == "" {
		*in = *aux
	}
	var d *xplace.Design
	var err error
	switch {
	case *in != "":
		var lopts []xplace.LoadOption
		if *lef != "" {
			lopts = append(lopts, xplace.WithLEF(*lef))
		}
		d, err = xplace.Load(*in, lopts...)
	case *bench != "":
		d, err = xplace.GenerateBenchmark(*bench, *scale, *seed)
	default:
		fmt.Fprintln(os.Stderr, "xplace: need -bench or -in (see -h)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xplace:", err)
		os.Exit(1)
	}
	st := d.Stats()
	fmt.Printf("design %s: %d cells (%d movable, %d fixed), %d nets, %d pins, util %.2f\n",
		st.Name, st.Cells, st.Movable, st.Fixed, st.Nets, st.Pins, st.Util)

	eng := xplace.NewEngine(*workers, -1)
	var tr *xplace.Tracer
	sopts := []xplace.Option{xplace.WithEngine(eng)}
	if *backendN != "" {
		bopt, err := xplace.WithBackendName(*backendN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(2)
		}
		sopts = append(sopts, bopt)
	}
	if *strategy != "" {
		sopt, err := xplace.WithStrategyName(*strategy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(2)
		}
		sopts = append(sopts, sopt)
	}
	if *trace != "" {
		tr = xplace.NewTracer()
		sopts = append(sopts, xplace.WithTracer(tr))
	}
	if *mode == "xplace-nn" && *model == "" {
		fmt.Fprintln(os.Stderr, "xplace: -mode xplace-nn requires -model (train one with xtrain)")
		os.Exit(2)
	}
	if *model != "" {
		// The artifact is integrity-checked here, at option time — a bad
		// file is a clean CLI error, not a mid-placement failure.
		mopt, err := xplace.WithFieldModel(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		sopts = append(sopts, mopt)
	}
	session := xplace.NewSession(sopts...)
	defer session.Close()
	defer eng.Close()
	opts := xplace.FlowOptions{}
	switch *mode {
	case "baseline":
		opts.Placement = xplace.BaselinePlacement()
	case "xplace-nn":
		// The model itself was installed above as a session option
		// (WithFieldModel); the mode only selects the full-optimization
		// placement configuration it blends into.
		opts.Placement = xplace.DefaultPlacement()
	default:
		opts.Placement = xplace.DefaultPlacement()
	}
	opts.Placement.GridSize = *grid
	opts.Placement.TargetDensity = *target
	opts.Placement.Seed = *seed
	opts.Placement.Effort = *effort
	if *maxIter > 0 {
		opts.Placement.Sched.MaxIter = *maxIter
	}
	if *legalizer == "abacus" {
		opts.Legalizer = xplace.LegalizeAbacus
	}
	if *route {
		opts.Route = &xplace.RouteOptions{}
	}

	fr, err := session.Flow(context.Background(), d, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xplace:", err)
		os.Exit(1)
	}
	fmt.Printf("GP:    HPWL %.4g  overflow %.3f  iters %d  wall %v  sim %v\n",
		fr.HPWLGP, fr.GP.Overflow, fr.GP.Iterations, fr.GPTime.Round(1e6), fr.GPSim.Round(1e6))
	fmt.Printf("LG:    HPWL %.4g  (%+.2f%%)  %v\n",
		fr.HPWLLegal, 100*(fr.HPWLLegal/fr.HPWLGP-1), fr.LGTime.Round(1e6))
	fmt.Printf("DP:    HPWL %.4g  (%+.2f%% vs LG)  %v  violations %d\n",
		fr.HPWLFinal, 100*(fr.HPWLFinal/fr.HPWLLegal-1), fr.DPTime.Round(1e6), fr.Violations)
	if fr.Route != nil {
		fmt.Printf("route: OVFL-5 %.2f  total overflow %.0f  wirelength %d gcells\n",
			fr.Route.Top5Overflow, fr.Route.TotalOverflow, fr.Route.WirelengthGCells)
	}
	if *stats {
		fmt.Print("GP engine stats:\n", eng.Stats())
	}
	if *csv {
		if err := fr.GP.Recorder.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
	}
	if tr != nil {
		fh, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(fh); err != nil {
			fh.Close()
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		if err := fh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d trace events; open in about:tracing or ui.perfetto.dev)\n", *trace, tr.Len())
	}
	if *out != "" {
		if err := xplace.WritePlacementPl(*out, d, fr.FinalX, fr.FinalY); err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	if *svg != "" {
		fh, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		if err := xplace.WriteSVG(fh, d, fr.FinalX, fr.FinalY, xplace.SVGOptions{}); err != nil {
			fh.Close()
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		if err := fh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xplace:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svg)
	}
}
