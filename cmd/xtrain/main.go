// Command xtrain trains the Fourier-neural-operator field predictor of
// the Xplace-NN extension (§3.3 of the paper) on randomly generated
// density maps with numerically solved electric-field labels, and saves
// the weights for use with `xplace -mode xplace-nn -model <file>`.
//
// Example:
//
//	xtrain -samples 64 -res 32 -epochs 30 -out fno.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"xplace"
)

func main() {
	var (
		samples = flag.Int("samples", 48, "number of training samples")
		res     = flag.Int("res", 32, "training resolution (power of two)")
		epochs  = flag.Int("epochs", 25, "training epochs")
		lr      = flag.Float64("lr", 1e-3, "Adam learning rate")
		width   = flag.Int("width", 0, "model width (0 = paper-scale default)")
		modes   = flag.Int("modes", 0, "retained Fourier modes (0 = default)")
		layers  = flag.Int("layers", 0, "FNO blocks (0 = default)")
		seed    = flag.Int64("seed", 1, "data / init seed")
		out     = flag.String("out", "fno.gob", "output model file")
	)
	flag.Parse()

	cfg := xplace.DefaultModelConfig()
	if *width > 0 {
		cfg.Width = *width
	}
	if *modes > 0 {
		cfg.Modes = *modes
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	cfg.Seed = *seed

	m := xplace.NewModel(cfg)
	fmt.Printf("model: width %d, modes %d, layers %d — %d parameters (paper: 471k)\n",
		cfg.Width, cfg.Modes, cfg.Layers, m.ParamCount())

	fmt.Printf("generating %d samples at %dx%d...\n", *samples, *res, *res)
	train := xplace.GenerateTrainingSamples(*samples, *res, *res, *seed)
	test := xplace.GenerateTrainingSamples(*samples/4+1, *res, *res, *seed+1000)

	fmt.Printf("untrained rel-L2: train-dist %.3f\n", m.Evaluate(test))
	m.Train(train, xplace.TrainOptions{
		Epochs: *epochs, LR: *lr, Seed: *seed,
		Log: func(ep int, loss float64) {
			fmt.Printf("epoch %3d  rel-L2 %.4f\n", ep, loss)
		},
	})
	fmt.Printf("trained  rel-L2: held-out x-field %.3f, y-field via flip %.3f\n",
		m.Evaluate(test), m.EvaluateFlipY(test))

	fh, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtrain:", err)
		os.Exit(1)
	}
	if err := m.Save(fh); err != nil {
		fh.Close()
		fmt.Fprintln(os.Stderr, "xtrain:", err)
		os.Exit(1)
	}
	if err := fh.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "xtrain:", err)
		os.Exit(1)
	}
	fmt.Println("saved", *out)
}
