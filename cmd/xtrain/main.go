// Command xtrain trains the Fourier-neural-operator field predictor of
// the Xplace-NN extension (§3.3 of the paper) and writes it as a
// versioned, integrity-checked model artifact for `xplace -model`,
// `xbench -model` and the serving registry (`xserve -models <dir>`).
//
// Training data mixes the paper's random density maps with density maps
// of randomly scattered contest benchmarks (-benches), both labelled by
// the numerical Poisson solve — the model learns from the same field
// operator it later replaces in the early placement stage.
//
// Examples:
//
//	xtrain -samples 64 -res 32 -epochs 30 -out models/fno32.xfnm
//	xtrain -benches adaptec1,fft_1 -per-bench 8 -out models/fno32.xfnm
//	xtrain -stat models/fno32.xfnm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xplace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xtrain:", err)
	os.Exit(1)
}

func main() {
	var (
		samples  = flag.Int("samples", 48, "number of random-map training samples")
		benches  = flag.String("benches", "", "comma-separated benchmark names for benchmark-derived density samples ('' = random maps only)")
		perBench = flag.Int("per-bench", 8, "samples per benchmark in -benches")
		bscale   = flag.Float64("bench-scale", 0.004, "benchmark scale for -benches sample generation")
		res      = flag.Int("res", 32, "training resolution (power of two)")
		epochs   = flag.Int("epochs", 25, "training epochs")
		lr       = flag.Float64("lr", 1e-3, "Adam learning rate")
		width    = flag.Int("width", 0, "model width (0 = paper-scale default)")
		modes    = flag.Int("modes", 0, "retained Fourier modes (0 = default)")
		layers   = flag.Int("layers", 0, "FNO blocks (0 = default)")
		seed     = flag.Int64("seed", 1, "data / init seed")
		out      = flag.String("out", "fno.xfnm", "output model artifact")
		stat     = flag.String("stat", "", "print a model artifact's header (version, shapes, sha256) and exit")
	)
	flag.Parse()

	if *stat != "" {
		fh, err := os.Open(*stat)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		hdr, err := xplace.StatModel(fh)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: FNO width %d, modes %d, layers %d — %d parameters\n",
			*stat, hdr.Config.Width, hdr.Config.Modes, hdr.Config.Layers, hdr.ParamCount)
		fmt.Printf("  trained at %dx%d, payload sha256 %s\n", hdr.TrainRes, hdr.TrainRes, hdr.SHA256)
		return
	}

	cfg := xplace.DefaultModelConfig()
	if *width > 0 {
		cfg.Width = *width
	}
	if *modes > 0 {
		cfg.Modes = *modes
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	cfg.Seed = *seed

	m := xplace.NewModel(cfg)
	fmt.Printf("model: width %d, modes %d, layers %d — %d parameters (paper: 471k)\n",
		cfg.Width, cfg.Modes, cfg.Layers, m.ParamCount())

	fmt.Printf("generating %d random samples at %dx%d...\n", *samples, *res, *res)
	train := xplace.GenerateTrainingSamples(*samples, *res, *res, *seed)
	if *benches != "" {
		names := strings.Split(*benches, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		fmt.Printf("generating %d benchmark samples (%s at scale %g)...\n",
			*perBench*len(names), strings.Join(names, ", "), *bscale)
		bs, err := xplace.GenerateBenchmarkTrainingSamples(names, *perBench, *res, *bscale, *seed)
		if err != nil {
			fatal(err)
		}
		train = append(train, bs...)
	}
	test := xplace.GenerateTrainingSamples(*samples/4+1, *res, *res, *seed+1000)

	fmt.Printf("untrained rel-L2: held-out %.3f\n", m.Evaluate(test))
	m.Train(train, xplace.TrainOptions{
		Epochs: *epochs, LR: *lr, Seed: *seed,
		Log: func(ep int, loss float64) {
			fmt.Printf("epoch %3d  rel-L2 %.4f\n", ep, loss)
		},
	})
	fmt.Printf("trained  rel-L2: held-out x-field %.3f, y-field via flip %.3f\n",
		m.Evaluate(test), m.EvaluateFlipY(test))

	fh, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := m.Save(fh); err != nil {
		fh.Close()
		fatal(err)
	}
	if err := fh.Close(); err != nil {
		fatal(err)
	}
	// Round-trip the header so what we report is what a loader will see.
	rf, err := os.Open(*out)
	if err != nil {
		fatal(err)
	}
	hdr, err := xplace.StatModel(rf)
	rf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("saved %s (%d params, sha256 %s...)\n", *out, hdr.ParamCount, hdr.SHA256[:12])
}
