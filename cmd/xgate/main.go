// Command xgate is the fault-tolerant placement gateway: one HTTP front
// end sharding jobs across a fleet of xserve workers while presenting
// the exact submit/status/cancel/SSE API of a single worker.
//
// Jobs route by consistent hash of their content key, so identical
// resubmissions land on the node whose result cache already holds them.
// Workers are health-checked; transient submit failures retry with
// backoff; a worker that dies mid-job has its jobs rerun on the next
// ring node (deterministic placement makes the rerun bit-identical, so
// the client's single job ID just keeps reporting progress). Under
// total overload, allow_draft jobs degrade to a local lbub draft tier
// and the rest shed with 429 + Retry-After.
//
// Example:
//
//	xserve -addr :8081 -store /var/lib/xserve-1 &
//	xserve -addr :8082 -store /var/lib/xserve-2 &
//	xgate -addr :8080 -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	      -store /var/lib/xgate -draft
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"bench":"adaptec1","scale":0.02,"allow_draft":true}'
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xplace/internal/gateway"
	"xplace/internal/jobstore"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		nodes       = flag.String("nodes", "", "comma-separated worker base URLs (required)")
		replicas    = flag.Int("replicas", 64, "virtual nodes per worker on the hash ring")
		probeEvery  = flag.Duration("probe-period", 250*time.Millisecond, "worker readiness probe interval")
		downAfter   = flag.Int("down-after", 2, "consecutive probe failures marking a worker down")
		upAfter     = flag.Int("up-after", 2, "consecutive probe successes marking a worker up")
		attempts    = flag.Int("submit-attempts", 3, "submit tries per node before spilling to the next")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 and failover sweep pause")
		routeWait   = flag.Duration("route-wait", 60*time.Second, "how long failover/recovery sweeps for a willing node")
		storeDir    = flag.String("store", "", "durable gateway WAL directory (empty = in-memory only)")
		draft       = flag.Bool("draft", false, "enable the local lbub draft tier for allow_draft jobs under overload")
		draftIter   = flag.Int("draft-max-iter", 0, "iteration cap for draft runs (0 = request's own)")
		draftWorker = flag.Int("draft-workers", 0, "kernel workers for the draft engine (0 = NumCPU)")
	)
	flag.Parse()
	fleet := splitNodes(*nodes)
	if len(fleet) == 0 {
		log.Fatal("xgate: -nodes is required (comma-separated worker base URLs)")
	}

	var store *jobstore.Store
	if *storeDir != "" {
		var err error
		store, err = jobstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("xgate: opening store: %v", err)
		}
	}
	g, err := gateway.New(gateway.Options{
		Nodes:          fleet,
		Replicas:       *replicas,
		ProbePeriod:    *probeEvery,
		DownAfter:      *downAfter,
		UpAfter:        *upAfter,
		SubmitAttempts: *attempts,
		RetryAfter:     *retryAfter,
		RouteWait:      *routeWait,
		Store:          store,
		Draft: gateway.DraftOptions{
			Enabled:       *draft,
			MaxIter:       *draftIter,
			EngineWorkers: *draftWorker,
		},
	})
	if err != nil {
		log.Fatalf("xgate: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: gateway.NewMux(g)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("xgate: listening on %s, fronting %d workers: %s",
		*addr, len(fleet), strings.Join(fleet, ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("xgate: %v — shutting down", sig)
	case err := <-errc:
		log.Printf("xgate: server error: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		<-sigc
		cancel()
	}()
	if err := g.Close(ctx); err != nil {
		log.Printf("xgate: close: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("xgate: http shutdown: %v", err)
	}
	log.Printf("xgate: bye")
}

func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(strings.TrimRight(strings.TrimSpace(n), "/"))
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}
