package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xplace/internal/gateway"
	"xplace/internal/jobapi"
)

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// worker is one spawned xserve process in the fleet under test.
type worker struct {
	cmd  *exec.Cmd
	base string
	log  *os.File
}

func buildXserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xserve-under-test")
	if out, err := exec.Command("go", "build", "-o", bin, "../xserve").CombinedOutput(); err != nil {
		t.Fatalf("building xserve: %v\n%s", err, out)
	}
	return bin
}

// startWorker spawns an xserve daemon. Every worker (and the reference)
// runs the same -engines/-workers configuration: determinism across the
// fleet — the property failover reruns rely on — holds for equal worker
// counts.
func startWorker(t *testing.T, bin string) *worker {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	logf, err := os.CreateTemp(t.TempDir(), "xserve-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-addr", addr, "-engines", "1", "-workers", "2", "-queue", "8")
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &worker{cmd: cmd, base: "http://" + addr, log: logf}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(w.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return w
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if b, rerr := os.ReadFile(logf.Name()); rerr == nil {
		t.Logf("worker log:\n%s", b)
	}
	t.Fatal("worker never became ready")
	return nil
}

// sigkill is the chaos event: no drain, no goodbye.
func (w *worker) sigkill(t *testing.T) {
	t.Helper()
	if err := w.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w.cmd.Process.Wait()
}

func chaosRequest(seed int64) jobapi.Request {
	return jobapi.Request{Bench: "adaptec1", Scale: 0.02, Seed: seed, MaxIter: 60}
}

// referenceResults runs the same requests on one undisturbed worker and
// returns state/hpwl/overflow/iterations per seed.
func referenceResults(t *testing.T, base string, seeds []int64) map[int64]map[string]any {
	t.Helper()
	out := make(map[int64]map[string]any)
	for _, seed := range seeds {
		b, _ := json.Marshal(chaosRequest(seed))
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		var acc map[string]any
		if derr := json.NewDecoder(resp.Body).Decode(&acc); derr != nil {
			t.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reference submit: %d (%v)", resp.StatusCode, acc)
		}
		id := int(acc["id"].(float64))
		deadline := time.Now().Add(3 * time.Minute)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("reference job %d never finished", id)
			}
			r, gerr := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
			if gerr != nil {
				t.Fatal(gerr)
			}
			var st map[string]any
			_ = json.NewDecoder(r.Body).Decode(&st)
			r.Body.Close()
			if st["state"] == "succeeded" {
				out[seed] = st
				break
			}
			if s, _ := st["state"].(string); s == "failed" || s == "canceled" || s == "timed-out" {
				t.Fatalf("reference job %d ended %v: %v", id, st["state"], st["error"])
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	return out
}

// TestChaosKillWorkerMidTrajectory is the tentpole's acceptance gate:
// three real xserve workers behind the gateway, four jobs in flight, one
// worker SIGKILLed while running a job mid-trajectory. Every job must
// complete under its original gateway ID — the killed worker's jobs
// failing over to survivors — with final numbers bit-identical to an
// undisturbed reference run, no job duplicated or lost, and the xgate_*
// counters accounting for every route and failover.
func TestChaosKillWorkerMidTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test")
	}
	bin := buildXserve(t)
	fleet := []*worker{startWorker(t, bin), startWorker(t, bin), startWorker(t, bin)}
	byBase := map[string]*worker{}
	nodes := make([]string, len(fleet))
	for i, w := range fleet {
		nodes[i] = w.base
		byBase[w.base] = w
	}

	g, err := gateway.New(gateway.Options{
		Nodes:       nodes,
		ProbePeriod: 50 * time.Millisecond,
		RetryAfter:  100 * time.Millisecond,
		RouteWait:   60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = g.Close(ctx)
	}()

	seeds := []int64{1, 2, 3, 4}
	jobs := make(map[int64]*gateway.Job, len(seeds)) // seed -> job
	for _, seed := range seeds {
		j, serr := g.Submit(chaosRequest(seed))
		if serr != nil {
			t.Fatalf("submit seed %d: %v", seed, serr)
		}
		jobs[seed] = j
	}
	if got := len(g.Jobs()); got != len(seeds) {
		t.Fatalf("gateway tracks %d jobs, submitted %d", got, len(seeds))
	}

	// Kill the worker of the first job seen mid-trajectory (past iteration
	// 8, not yet terminal) — a genuine mid-placement crash.
	var victim string
	deadline := time.Now().Add(2 * time.Minute)
killSearch:
	for time.Now().Before(deadline) {
		for _, j := range jobs {
			st := j.Status()
			if st.Progress != nil && st.Progress.Iter >= 8 && !terminal(st.State) && st.Node != "" {
				victim = st.Node
				break killSearch
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("no job was observed mid-trajectory; cannot stage the crash")
	}
	byBase[victim].sigkill(t)
	t.Logf("killed worker %s", victim)

	// Every job completes under its original ID.
	for seed, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(4 * time.Minute):
			t.Fatalf("seed %d (job %d) never finished after the kill: %+v", seed, j.ID(), j.Status())
		}
		if st := j.Status(); st.State != "succeeded" {
			t.Fatalf("seed %d (job %d): %+v", seed, j.ID(), st)
		}
	}

	// No duplicates, no losses: exactly the submitted jobs exist.
	if got := len(g.Jobs()); got != len(seeds) {
		t.Errorf("gateway tracks %d jobs after chaos, want %d", got, len(seeds))
	}

	// Bit-identical to an undisturbed run: a fresh reference worker with
	// identical flags places the same four requests; every final number
	// must match exactly, failovers included.
	ref := referenceResults(t, startWorker(t, bin).base, seeds)
	failedOver := 0
	for seed, j := range jobs {
		st := j.Status()
		failedOver += st.Failovers
		want := ref[seed]
		if st.HPWL != want["hpwl"].(float64) {
			t.Errorf("seed %d: hpwl %v, reference %v (must be bit-identical)", seed, st.HPWL, want["hpwl"])
		}
		if st.Overflow != want["overflow"].(float64) {
			t.Errorf("seed %d: overflow %v, reference %v", seed, st.Overflow, want["overflow"])
		}
		if float64(st.Iterations) != want["iterations"].(float64) {
			t.Errorf("seed %d: iterations %v, reference %v", seed, st.Iterations, want["iterations"])
		}
	}
	if failedOver == 0 {
		t.Error("kill mid-trajectory caused no failovers — the chaos never bit")
	}

	// Metric accounting: every assignment is an initial route or a
	// failover re-route; every failover is visible.
	reg := metricValues(t, g)
	if reg["xgate_route_total"] != float64(len(seeds))+reg["xgate_failover_total"] {
		t.Errorf("route_total %v != submissions %d + failover_total %v",
			reg["xgate_route_total"], len(seeds), reg["xgate_failover_total"])
	}
	if int(reg["xgate_failover_total"]) != failedOver {
		t.Errorf("failover_total %v, job statuses say %d", reg["xgate_failover_total"], failedOver)
	}
	if reg["xgate_shed_total"] != 0 {
		t.Errorf("shed_total %v, want 0 — no job may be dropped", reg["xgate_shed_total"])
	}
}

func terminal(s string) bool {
	switch s {
	case "succeeded", "failed", "canceled", "timed-out":
		return true
	}
	return false
}

// metricValues scrapes the gateway registry's un-labelled series.
func metricValues(t *testing.T, g *gateway.Gateway) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := g.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out
}
