package xplace

// Fence-region constraint tests — the paper's stated future work,
// implemented as an extension: cells assigned to a fence must stay inside
// it through global placement and legalization.

import (
	"testing"

	"xplace/internal/geom"
)

// fencedDesign builds a rows design where the first quarter of the cells
// is fenced into the left third of the die.
func fencedDesign(t *testing.T) (*Design, Rect, []int) {
	t.Helper()
	side := 48.0
	d := NewDesign("fenced", side, side)
	for y := 0.0; y+4 <= side; y += 4 {
		d.Rows = append(d.Rows, Row{Y: y, X0: 0, X1: side, Height: 4, SiteWidth: 1})
	}
	fence := Rect{Lx: 0, Ly: 0, Hx: 16, Hy: 48}
	fid := d.AddFence(fence)
	n := 160
	var fenced []int
	for i := 0; i < n; i++ {
		x := float64((i*31)%44) + 2
		y := float64((i*17)%40) + 2
		c := d.AddCell("c", 2, 4, x, y, Movable)
		if i < n/4 {
			d.SetFence(c, fid)
			fenced = append(fenced, c)
		}
	}
	for i := 0; i+1 < n; i++ {
		d.AddNet("n")
		d.AddPin(i, 0, 0)
		d.AddPin(i+1, 0, 0)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d, fence, fenced
}

func TestFenceRespectedByGlobalPlacement(t *testing.T) {
	d, fence, fenced := fencedDesign(t)
	opts := DefaultPlacement()
	opts.GridSize = 32
	opts.Sched.MaxIter = 250
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fenced {
		hw, hh := d.CellW[c]/2, d.CellH[c]/2
		r := geom.Rect{Lx: res.X[c] - hw, Ly: res.Y[c] - hh, Hx: res.X[c] + hw, Hy: res.Y[c] + hh}
		if !fence.ContainsRect(r) {
			t.Fatalf("fenced cell %d escaped to %v (fence %v)", c, r, fence)
		}
	}
}

func TestFenceRespectedThroughLegalization(t *testing.T) {
	d, fence, fenced := fencedDesign(t)
	opts := DefaultPlacement()
	opts.GridSize = 32
	opts.Sched.MaxIter = 250
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	lx, ly, err := Legalize(d, res.X, res.Y, LegalizeTetris)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckLegal(d, lx, ly); v != 0 {
		t.Fatalf("%d violations after fence-aware legalization", v)
	}
	for _, c := range fenced {
		hw, hh := d.CellW[c]/2, d.CellH[c]/2
		r := geom.Rect{Lx: lx[c] - hw, Ly: ly[c] - hh, Hx: lx[c] + hw, Hy: ly[c] + hh}
		if !fence.ContainsRect(r) {
			t.Fatalf("fenced cell %d legalized outside fence: %v", c, r)
		}
	}
}

func TestAbacusRejectsFences(t *testing.T) {
	d, _, _ := fencedDesign(t)
	if _, _, err := Legalize(d, d.CellX, d.CellY, LegalizeAbacus); err == nil {
		t.Error("Abacus must reject fence-constrained designs")
	}
}

func TestFenceViolationDetected(t *testing.T) {
	d, _, fenced := fencedDesign(t)
	x := append([]float64(nil), d.CellX...)
	y := append([]float64(nil), d.CellY...)
	// Force a fenced cell far outside its fence but onto a legal row slot.
	x[fenced[0]] = 41
	y[fenced[0]] = 2
	if v := CheckLegal(d, x, y); v == 0 {
		t.Error("fence violation not detected")
	}
}

func TestFenceBuilderValidation(t *testing.T) {
	d := NewDesign("v", 10, 10)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("fence outside region", func() { d.AddFence(Rect{Lx: 5, Ly: 5, Hx: 15, Hy: 15}) })
	c := d.AddCell("c", 1, 1, 5, 5, Movable)
	mustPanic("unknown fence", func() { d.SetFence(c, 3) })
	f := d.AddFence(Rect{Lx: 0, Ly: 0, Hx: 5, Hy: 5})
	d.SetFence(c, f)
	if r, ok := d.FenceOf(c); !ok || r.Hx != 5 {
		t.Error("FenceOf wrong")
	}
	d.SetFence(c, -1)
	if _, ok := d.FenceOf(c); ok {
		t.Error("clearing fence failed")
	}
}
