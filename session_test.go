package xplace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sessionTestDesign(t *testing.T, cells int, seed int64) *Design {
	t.Helper()
	spec := Catalog2005()[0]
	scale := float64(cells) / float64(spec.Cells)
	return GenerateFromSpec(spec, scale, seed)
}

// sessionTestOpts pins the GP loop to exactly iters iterations (MinIter
// blocks early convergence, MaxIter caps it) on a small grid.
func sessionTestOpts(iters int) PlacementOptions {
	opts := DefaultPlacement()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MinIter = iters
	opts.Sched.MaxIter = iters
	return opts
}

// TestSessionOwnsDefaultEngine: a session with no WithEngine lazily builds
// an engine and Close tears it down — launching on it afterwards panics,
// proving the worker pool is really gone (the pre-Session PlaceContext
// leaked it silently).
func TestSessionOwnsDefaultEngine(t *testing.T) {
	s := NewSession(WithEngineOptions(1, 0))
	eng := s.Engine()
	if eng == nil {
		t.Fatal("no lazy engine")
	}
	if got := s.Engine(); got != eng {
		t.Fatal("Engine() not stable across calls")
	}
	res, err := s.Place(context.Background(), sessionTestDesign(t, 120, 1), sessionTestOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Fatalf("Iterations = %d, want 5", res.Iterations)
	}
	if eng.Closed() {
		t.Fatal("engine closed while session still open")
	}
	s.Close()
	s.Close() // idempotent
	if !eng.Closed() {
		t.Error("Session.Close did not close the engine it created")
	}
}

// TestSessionLeavesSuppliedEngineOpen: WithEngine hands the session a
// caller-owned engine; Session.Close must not touch it.
func TestSessionLeavesSuppliedEngineOpen(t *testing.T) {
	eng := NewEngine(1, 0)
	defer eng.Close()

	s := NewSession(WithEngine(eng))
	if s.Engine() != eng {
		t.Fatal("session did not adopt the supplied engine")
	}
	if _, err := s.Place(context.Background(), sessionTestDesign(t, 120, 2), sessionTestOpts(5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if eng.Closed() {
		t.Fatal("Session.Close closed a caller-supplied engine")
	}
	// Still usable: the caller owns it.
	done := make([]float64, 4)
	eng.Launch("still_open", len(done), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			done[i] = 2
		}
	})
	eng.Sync()
	if done[0] != 2 {
		t.Error("supplied engine dead after Session.Close")
	}
}

// TestSessionWithBackend: WithBackend threads the compute backend into the
// engine and every run; WithBackendName resolves registry names and rejects
// unknown ones.
func TestSessionWithBackend(t *testing.T) {
	s := NewSession(WithEngineOptions(1, 0), WithBackend(Float32Backend()))
	defer s.Close()
	if s.Backend() == nil || s.Backend().Name() != "float32" {
		t.Fatalf("session backend = %v, want float32", s.Backend())
	}
	if got := s.Engine().Backend(); got == nil || got.Name() != "float32" {
		t.Fatalf("engine backend = %v, want float32", got)
	}
	res, err := s.Place(context.Background(), sessionTestDesign(t, 150, 8), sessionTestOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Fatalf("Iterations = %d, want 10", res.Iterations)
	}

	if _, err := WithBackendName("float16"); err == nil {
		t.Error("WithBackendName accepted an unknown backend")
	}
	opt, err := WithBackendName("float32")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(WithEngineOptions(1, 0), opt)
	defer s2.Close()
	if s2.Backend().Name() != "float32" {
		t.Fatalf("WithBackendName backend = %q", s2.Backend().Name())
	}
}

// TestSessionCloseTwiceAfterEngineClose: the double-release chain — Close a
// Session whose engine is already gone, twice, after a completed run. No
// panic, no double-free; a caller-supplied engine stays the caller's to
// close first.
func TestSessionCloseTwiceAfterEngineClose(t *testing.T) {
	// Session-owned engine: user grabs the engine handle and closes it
	// before the session (the documented-wrong-but-survivable order).
	s := NewSession(WithEngineOptions(1, 0))
	if _, err := s.Place(context.Background(), sessionTestDesign(t, 120, 9), sessionTestOpts(4)); err != nil {
		t.Fatal(err)
	}
	eng := s.Engine()
	eng.Close()
	eng.Close() // engine Close is itself idempotent
	s.Close()   // must tolerate the already-closed engine
	s.Close()   // and stay idempotent

	// Caller-supplied engine closed before the session.
	eng2 := NewEngine(1, 0)
	s2 := NewSession(WithEngine(eng2))
	if _, err := s2.Place(context.Background(), sessionTestDesign(t, 120, 10), sessionTestOpts(4)); err != nil {
		t.Fatal(err)
	}
	eng2.Close()
	s2.Close()
	s2.Close()
}

// TestSessionObservabilityWiring: WithTracer/WithMetrics/WithProgress
// thread through a Session.Place run — kernels and operator groups land in
// the tracer, the paper-optimization series land in the registry, and the
// progress hook sees 1-based consecutive iterations.
func TestSessionObservabilityWiring(t *testing.T) {
	tr := NewTracer()
	reg := NewMetricsRegistry()
	var iters []int
	s := NewSession(
		WithEngineOptions(1, 0),
		WithTracer(tr),
		WithMetrics(reg),
		WithProgress(func(sn Snapshot) { iters = append(iters, sn.Iter) }),
	)
	defer s.Close()

	res, err := s.Place(context.Background(), sessionTestDesign(t, 150, 3), sessionTestOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 20 || iters[0] != 1 || iters[len(iters)-1] != res.Iterations {
		t.Errorf("progress iters = %v (len %d), want 1..%d", iters, len(iters), res.Iterations)
	}
	if counts := tr.KernelLaunchCounts(); len(counts) == 0 {
		t.Error("tracer saw no kernel launches")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		"xplace_gp_iterations_total 20",
		"xplace_oc_fused_launches_saved_total",
		"xplace_stage_omega",
		"xplace_iteration_seconds_count 20",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Tracer is detached after the run: launches outside Place must not
	// grow the trace.
	n := tr.Len()
	eng := s.Engine()
	sink := make([]float64, 8)
	eng.Launch("untraced", len(sink), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	})
	eng.Sync()
	if tr.Len() != n {
		t.Error("engine kept tracing after Session.Place returned")
	}
}

// TestSessionTraceLaunchSum is the trace-completeness acceptance check: in
// a 50-iteration traced run, the per-operator kernel-launch counts in the
// trace sum exactly to the engine's own Launches counter.
func TestSessionTraceLaunchSum(t *testing.T) {
	d := sessionTestDesign(t, 200, 4)
	eng := NewEngine(2, 100*time.Microsecond)
	defer eng.Close()

	p, err := NewPlacer(d, eng, sessionTestOpts(50))
	if err != nil {
		t.Fatal(err)
	}
	// Attach after NewPlacer: RunContext begins with an engine Reset that
	// zeroes Stats, so the traced window must match the counted window.
	tr := NewTracer()
	eng.SetTracer(tr)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTracer(nil)
	stats := eng.Stats() // before p.Close(): Close flushes deferred syncs
	p.Close()

	if res.Iterations != 50 {
		t.Fatalf("Iterations = %d, want 50", res.Iterations)
	}
	var sum int64
	for _, n := range tr.KernelLaunchCounts() {
		sum += n
	}
	if sum != stats.Launches {
		t.Errorf("trace kernel launches sum = %d, engine Launches = %d", sum, stats.Launches)
	}
	if stats.Launches == 0 {
		t.Error("no launches recorded")
	}
}

// TestSessionFlowStageSpans: Session.Flow emits one flow-category span per
// executed stage, and the Chrome export stays valid JSON.
func TestSessionFlowStageSpans(t *testing.T) {
	tr := NewTracer()
	s := NewSession(WithEngineOptions(1, 0), WithTracer(tr))
	defer s.Close()

	fopts := FlowOptions{Placement: sessionTestOpts(10)}
	res, err := s.Flow(context.Background(), sessionTestDesign(t, 150, 5), fopts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("flow left %d violations", res.Violations)
	}

	stages := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Cat == "flow" {
			stages[ev.Name] = true
		}
	}
	for _, want := range []string{"flow.gp", "flow.legalize", "flow.detail"} {
		if !stages[want] {
			t.Errorf("missing flow stage span %q (got %v)", want, stages)
		}
	}
	if stages["flow.route"] {
		t.Error("unexpected flow.route span without Route options")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
}

// TestRunFlowWrapperHonorsSuppliedEngine: the legacy RunFlowContext entry
// point still runs on a caller engine without closing it.
func TestRunFlowWrapperHonorsSuppliedEngine(t *testing.T) {
	eng := NewEngine(1, 0)
	defer eng.Close()
	fopts := FlowOptions{Placement: sessionTestOpts(8), Engine: eng, SkipDetail: true}
	if _, err := RunFlowContext(context.Background(), sessionTestDesign(t, 120, 6), fopts); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Launches == 0 {
		t.Fatal("flow did not run on the supplied engine")
	}
	// Engine survives the wrapper (its temporary session must not own it).
	if eng.Closed() {
		t.Error("RunFlowContext closed the caller-supplied engine")
	}
}

// TestPlaceContextPartialResultOnCancel: the wrapper path preserves the
// partial-result contract — a cancelled run returns ctx.Err() plus the
// placement it got to, with the last snapshot agreeing with Iterations.
func TestPlaceContextPartialResultOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var last int
	opts := sessionTestOpts(100000)
	opts.Progress = func(sn Snapshot) {
		last = sn.Iter
		if sn.Iter >= 5 {
			cancel()
		}
	}
	res, err := PlaceContext(ctx, sessionTestDesign(t, 400, 7), opts)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result on cancellation")
	}
	if res.Iterations != last {
		t.Errorf("Result.Iterations = %d, last snapshot = %d", res.Iterations, last)
	}
}
