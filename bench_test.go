package xplace

// Benchmark harness: one testing.B benchmark per paper table/figure, at
// reduced scale so `go test -bench=. -benchmem` completes quickly. The
// full-scale regeneration (all designs, the paper's layout, ratio rows)
// is `go run ./cmd/xbench -all`; see EXPERIMENTS.md for recorded runs.

import (
	"testing"
	"time"

	"xplace/internal/benchgen"
	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/placer"
	"xplace/internal/router"
)

const benchScale = 0.004

func benchEngine() *kernel.Engine {
	return kernel.New(kernel.Options{LaunchOverhead: 150 * time.Microsecond})
}

// BenchmarkTable1Stats measures benchmark synthesis (Table 1's designs).
func BenchmarkTable1Stats(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	for i := 0; i < b.N; i++ {
		d := benchgen.Generate(spec, benchScale, 1)
		_ = d.Stats()
	}
}

// BenchmarkTable2ISPD2005 measures the Table 2 comparison: one GP flow
// per mode on a scaled adaptec1.
func BenchmarkTable2ISPD2005(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	for _, mode := range []struct {
		name string
		opts PlacementOptions
	}{
		{"DREAMPlace", BaselinePlacement()},
		{"Xplace", DefaultPlacement()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := placer.New(d, benchEngine(), mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.RunIterations(50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Ablation measures per-iteration cost of each ablation
// configuration (Table 3).
func BenchmarkTable3Ablation(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	cfgs := []struct {
		name           string
		or, oc, oe, os bool
	}{
		{"none", false, false, false, false},
		{"OR", true, false, false, false},
		{"OR_OC", true, true, false, false},
		{"OR_OC_OE", true, true, true, false},
		{"all", true, true, true, true},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			opts := DefaultPlacement()
			opts.OperatorReduction = c.or
			opts.OperatorCombination = c.oc
			opts.OperatorExtraction = c.oe
			opts.OperatorSkipping = c.os
			p, err := placer.New(d, benchEngine(), opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.RunIteration(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4ISPD2015 measures the Table 4 flow including the OVFL-5
// routing score on a scaled fft_1.
func BenchmarkTable4ISPD2015(b *testing.B) {
	spec, _ := benchgen.FindSpec("fft_1")
	d := benchgen.Generate(spec, 0.01, 1)
	for _, mode := range []struct {
		name string
		opts PlacementOptions
	}{
		{"DREAMPlace", BaselinePlacement()},
		{"Xplace", DefaultPlacement()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := placer.New(d, benchEngine(), mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.RunIterations(50)
				if err != nil {
					b.Fatal(err)
				}
				router.Route(d, res.X, res.Y, router.Options{Grid: 32, Capacity: 3})
			}
		})
	}
}

// BenchmarkPlaceIteration measures one steady-state GP iteration of the
// Xplace fast path — the allocation-regression benchmark: after the
// engine-owned buffer arena, allocs/op must stay near zero.
func BenchmarkPlaceIteration(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	p, err := placer.New(d, benchEngine(), DefaultPlacement())
	if err != nil {
		b.Fatal(err)
	}
	// Warm up past lambda initialization and first-iteration setup.
	for i := 0; i < 5; i++ {
		if err := p.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectralSolve measures the full Poisson solve (forward DCT,
// spectral scale, batched potential/field evaluation, energy reduce) on a
// production-sized density grid — the dominant non-scatter cost of a GP
// iteration and the target of the v2 spectral engine.
func BenchmarkSpectralSolve(b *testing.B) {
	e := benchEngine()
	defer e.Close()
	g := geom.NewGrid(geom.Rect{Hx: 256, Hy: 256}, 256, 256)
	s := field.NewSystem(g, e)
	for i := range s.Total {
		s.Total[i] = float64(i%17) * 0.05
	}
	s.SolvePoisson(e) // warm the plan scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolvePoisson(e)
	}
}

// BenchmarkFigure2OperatorTrace measures one traced GP iteration (the
// Figure 2a dataflow capture).
func BenchmarkFigure2OperatorTrace(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	for i := 0; i < b.N; i++ {
		e := kernel.New(kernel.Options{Trace: true})
		p, err := placer.New(d, e, DefaultPlacement())
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RunIteration(); err != nil {
			b.Fatal(err)
		}
		_ = e.Trace()
	}
}

// BenchmarkFigure3FNOTraining measures FNO training epochs (Figure 3 /
// §4.3).
func BenchmarkFigure3FNOTraining(b *testing.B) {
	m := NewModel(ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: 1})
	samples := GenerateTrainingSamples(8, 16, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(samples, TrainOptions{Epochs: 1, LR: 1e-3})
	}
}

// BenchmarkFigure3FNOInference measures one field prediction at the
// placer's working resolution.
func BenchmarkFigure3FNOInference(b *testing.B) {
	m := NewModel(ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: 1})
	dens := make([]float64, 64*64)
	for i := range dens {
		dens[i] = float64(i%13) * 0.1
	}
	ex := make([]float64, 64*64)
	ey := make([]float64, 64*64)
	pred := NewFieldPredictor(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictField(dens, 64, 64, ex, ey)
	}
}

// BenchmarkFullFlow measures the end-to-end flow (GP to convergence,
// legalization, detailed placement) on a small design.
func BenchmarkFullFlow(b *testing.B) {
	spec, _ := benchgen.FindSpec("pci_bridge32_a")
	d := benchgen.Generate(spec, 0.02, 1)
	for i := 0; i < b.N; i++ {
		if _, err := RunFlow(d, FlowOptions{
			Placement: DefaultPlacement(),
			Legalizer: LegalizeTetris,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLaunchOverhead sweeps the simulated kernel-launch cost
// (DESIGN.md §5.1): fusing matters more as launches get more expensive.
func BenchmarkAblationLaunchOverhead(b *testing.B) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	for _, us := range []int{0, 50, 150, 500} {
		b.Run(time.Duration(us*int(time.Microsecond)).String(), func(b *testing.B) {
			e := kernel.New(kernel.Options{LaunchOverhead: time.Duration(us) * time.Microsecond})
			p, err := placer.New(d, e, DefaultPlacement())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.RunIteration(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e.Stats().Simulated.Microseconds())/float64(b.N), "sim-us/iter")
		})
	}
}
