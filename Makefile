GO ?= go

.PHONY: all vet build test test-float32 race test-recovery test-gateway test-oracle test-nn bench fuzz-smoke bench-trajectory bench-smoke check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 suite on the float32 fast path: the XPLACE_BACKEND env default
# re-runs every test on the reduced-precision backend without touching
# call sites (tests that pin exact float64 math set their backend
# explicitly, so they stay meaningful under the override).
test-float32:
	XPLACE_BACKEND=float32 $(GO) test ./...

race:
	$(GO) test -race ./...

# Durability gate: the job-store units (WAL replay, torn tail,
# checkpoint atomicity, cache), the scheduler recovery/cache/lifecycle
# suite, and the process-level SIGKILL kill-and-restart test that pins
# bit-identical resumed trajectories — all under the race detector.
test-recovery:
	$(GO) test -race ./internal/jobstore ./internal/serve
	$(GO) test -race -run 'TestKillRestartRecovery|TestEventsCloseOnDrain|TestCachedSubmissionOverHTTP|TestSubmitValidation|TestDivergenceFallbackOverHTTP' -v ./cmd/xserve

# Gateway gate: the ring/health/breaker/failover/overload unit suite on
# fake workers, then the process-level chaos test — three real xserve
# workers behind the gateway, one SIGKILLed mid-trajectory, every job
# finishing under its original ID with finals bit-identical to an
# undisturbed reference run — all under the race detector.
test-gateway:
	$(GO) test -race ./internal/gateway
	$(GO) test -race -run TestChaosKillWorkerMidTrajectory -v ./cmd/xgate

# Cross-strategy quality oracle: two structurally independent placers
# (Nesterov gradient flow vs LB/UB alternation) must agree on scaled
# adaptec1 within the checked-in band, the LB/UB side must be bit-identical
# run to run, and a diverging job must be rescued end-to-end by the
# serve-level lbub fallback.
test-oracle:
	$(GO) test -run 'TestOracle|TestLBUB|TestNesterovDiverges' -v ./internal/placer
	$(GO) test -run 'TestDivergenceFallbackOverHTTP|TestLBUBJobOverHTTP|TestStrategyInCacheKey' -v ./cmd/xserve

# Neural-field lane (§3.3 end to end, in-CI): the model-artifact
# integrity suite (versioned header, sha256, shape checks), a tiny FNO
# trained in-process with its training-MSE gate, the σ(ω) handoff /
# determinism / blended-quality placement tests, the facade -model
# option, and the serving side — registry, model-aware submit, and four
# concurrent jobs sharing one model through the batched inference path —
# under the race detector.
test-nn:
	$(GO) test -run 'TestArtifact|TestLoadRejects|TestGenerateBenchSamples|TestTrainingReducesLoss|TestGeneralizesToUnseenMaps|TestSaveLoadRoundTrip' -v ./internal/nn
	$(GO) test -run 'TestNNBlend' -v ./internal/placer
	$(GO) test -run 'TestSessionWithFieldModel|TestWithFieldModelTypedErrors|TestStatModelFacade' -v .
	$(GO) test -race -run 'TestModelRegistry|TestSubmitRejectsUnknownModel|TestBatchedInference' -v ./internal/serve
	$(GO) test -race -run 'TestSubmitModelValidation|TestModelJobOverHTTP' -v ./cmd/xserve

# Short fuzz pass over the file-format parsers: each target gets a few
# seconds on top of its seed corpus. Catches parser panics (negative or
# non-finite geometry, truncated streams) before they ship.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/bookshelf
	$(GO) test -fuzz=FuzzParseLEF -fuzztime=$(FUZZTIME) ./internal/lefdef
	$(GO) test -fuzz=FuzzParseDEF -fuzztime=$(FUZZTIME) ./internal/lefdef

# Kernel-substrate and transform microbenchmarks (pool vs goroutine-spawn
# dispatch, DCT round trips). Allocation columns are the regression signal:
# pooled launches and warm transforms must report 0 allocs/op.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/kernel ./internal/dct

# Bench trajectory: the pinned nine-config run (DREAMPlace-style baseline,
# Xplace without operator combination, full Xplace, the compute-backend
# ablation: float32, spectral truncation, adaptive grid, and all three
# combined, plus the LB/UB alternation strategy and the Xplace-NN blended
# flow) on adaptec1, written as a machine-readable record with the
# poisson512 micro timings. Re-baselining BENCH_8.json is a deliberate
# act: run this target and commit the diff alongside the change that
# moved the numbers.
BENCH_BASELINE ?= BENCH_8.json
bench-trajectory:
	$(GO) run ./cmd/xbench -json $(BENCH_BASELINE)

# Bench smoke gate (CI): re-run the trajectory and fail on schema drift,
# >5% HPWL regression, or any launch-count change at equal iterations
# against the checked-in baseline.
bench-smoke:
	$(GO) run ./cmd/xbench -check $(BENCH_BASELINE)

check: vet build race
