GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Kernel-substrate and transform microbenchmarks (pool vs goroutine-spawn
# dispatch, DCT round trips). Allocation columns are the regression signal:
# pooled launches and warm transforms must report 0 allocs/op.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/kernel ./internal/dct

check: vet build race
