GO ?= go

.PHONY: all vet build test race bench fuzz-smoke check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the file-format parsers: each target gets a few
# seconds on top of its seed corpus. Catches parser panics (negative or
# non-finite geometry, truncated streams) before they ship.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/bookshelf
	$(GO) test -fuzz=FuzzParseLEF -fuzztime=$(FUZZTIME) ./internal/lefdef
	$(GO) test -fuzz=FuzzParseDEF -fuzztime=$(FUZZTIME) ./internal/lefdef

# Kernel-substrate and transform microbenchmarks (pool vs goroutine-spawn
# dispatch, DCT round trips). Allocation columns are the regression signal:
# pooled launches and warm transforms must report 0 allocs/op.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/kernel ./internal/dct

check: vet build race
