package xplace

// Cross-module integration tests: Xplace-NN inside the placer, the
// LEF/DEF-to-placement path, and recorder-backed convergence checks.

import (
	"math"
	"strings"
	"testing"
)

func TestXplaceNNFlowIntegration(t *testing.T) {
	// Train a tiny FNO and run it inside the placer on a real benchmark;
	// the run must converge and stay NaN-free, and quality must remain in
	// family with plain Xplace (the paper reports ~1 permille better).
	m := NewModel(ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: 1})
	m.Train(GenerateTrainingSamples(16, 32, 32, 1), TrainOptions{Epochs: 15, LR: 2e-3, Seed: 1})

	d, err := GenerateBenchmark("fft_a", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultPlacement()
	plain.Sched.MaxIter = 500
	resPlain, err := Place(d, plain)
	if err != nil {
		t.Fatal(err)
	}
	neural := DefaultPlacement()
	neural.Sched.MaxIter = 500
	neural.Predictor = NewFieldPredictor(m)
	resNN, err := Place(d, neural)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(resNN.HPWL) || resNN.HPWL <= 0 {
		t.Fatalf("Xplace-NN HPWL = %v", resNN.HPWL)
	}
	if resNN.Overflow > 0.10 {
		t.Errorf("Xplace-NN overflow = %v", resNN.Overflow)
	}
	ratio := resNN.HPWL / resPlain.HPWL
	if ratio > 1.05 {
		t.Errorf("Xplace-NN HPWL ratio %v too far above plain Xplace", ratio)
	}
	t.Logf("HPWL: Xplace %.5g vs Xplace-NN %.5g (ratio %.4f; paper ~0.999)",
		resPlain.HPWL, resNN.HPWL, ratio)
}

func TestLEFDEFToPlacementIntegration(t *testing.T) {
	// Build an ISPD 2015-style design purely through the LEF/DEF path and
	// place it.
	lef := `
MACRO STD
  CLASS CORE ;
  SIZE 2 BY 4 ;
  PIN A
    PORT
      LAYER m1 ;
      RECT 0.4 1.6 0.8 2.4 ;
    END
  END A
END STD
`
	var def strings.Builder
	def.WriteString("VERSION 5.8 ;\nDESIGN lefflow ;\nDIEAREA ( 0 0 ) ( 48 48 ) ;\n")
	for y := 0; y+4 <= 48; y += 4 {
		def.WriteString("ROW r core 0 " + itoa(y) + " N DO 48 BY 1 STEP 1 0 ;\n")
	}
	def.WriteString("COMPONENTS 80 ;\n")
	for i := 0; i < 80; i++ {
		def.WriteString("- u" + itoa(i) + " STD + PLACED ( " +
			itoa((i*13)%46) + " " + itoa(((i*29)%11)*4) + " ) N ;\n")
	}
	def.WriteString("END COMPONENTS\nNETS 79 ;\n")
	for i := 0; i+1 < 80; i++ {
		def.WriteString("- n" + itoa(i) + " ( u" + itoa(i) + " A ) ( u" + itoa(i+1) + " A ) ;\n")
	}
	def.WriteString("END NETS\nEND DESIGN\n")

	lib, err := ReadLEF(strings.NewReader(lef))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadDEF(strings.NewReader(def.String()), lib)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFlow(d, FlowOptions{
		Placement: DefaultPlacement(),
		Legalizer: LegalizeTetris,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Violations != 0 {
		t.Errorf("%d violations placing a DEF design", fr.Violations)
	}
	if fr.HPWLFinal >= d.HPWL(nil, nil) {
		t.Errorf("placement did not improve DEF input: %.0f -> %.0f",
			d.HPWL(nil, nil), fr.HPWLFinal)
	}
	// Round-trip the placed design back out as DEF.
	var out strings.Builder
	if err := WriteDEF(&out, d, fr.FinalX, fr.FinalY); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DESIGN lefflow ;") {
		t.Error("DEF output malformed")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestRecorderConvergenceTrace(t *testing.T) {
	// The recorder must show the canonical GP trajectory: overflow
	// trending down, lambda trending up, gamma trending down.
	d, err := GenerateBenchmark("pci_bridge32_b", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultPlacement()
	opts.Sched.MaxIter = 500
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	hist := res.Recorder.History()
	if len(hist) < 50 {
		t.Fatalf("history too short: %d", len(hist))
	}
	first, last := hist[5], hist[len(hist)-1]
	if last.Overflow >= first.Overflow {
		t.Errorf("overflow did not decrease: %.3f -> %.3f", first.Overflow, last.Overflow)
	}
	if last.Lambda <= first.Lambda {
		t.Errorf("lambda did not grow: %g -> %g", first.Lambda, last.Lambda)
	}
	if last.Gamma >= first.Gamma {
		t.Errorf("gamma did not shrink: %g -> %g", first.Gamma, last.Gamma)
	}
	if last.Omega <= first.Omega {
		t.Errorf("omega did not grow: %g -> %g", first.Omega, last.Omega)
	}
	best, _ := res.Recorder.BestHPWL()
	if best <= 0 {
		t.Errorf("BestHPWL = %v", best)
	}
}
