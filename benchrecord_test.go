package xplace

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"xplace/internal/obs"
)

// TestCheckedInBenchRecord validates the committed bench-trajectory
// baseline: it parses under the current schema, carries the seven pinned
// configurations, shows the paper's OC saving (the fused config launches
// strictly fewer kernels than the unfused one over the same iterations),
// keeps the float32 trajectory within the precision band of the float64
// reference, and survives a write/read round trip unchanged. A schema
// change that breaks this test must re-baseline BENCH_6.json
// (make bench-trajectory) in the same commit.
func TestCheckedInBenchRecord(t *testing.T) {
	fh, err := os.Open("BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rec, err := obs.ReadBenchRecord(fh)
	if err != nil {
		t.Fatal(err)
	}

	runs := map[string]BenchRun{}
	for _, r := range rec.Runs {
		runs[r.Config] = r
	}
	for _, want := range []string{
		"baseline", "xplace-unfused", "xplace",
		"xplace-f32", "xplace-trunc", "xplace-adaptive", "xplace-fast",
	} {
		if _, ok := runs[want]; !ok {
			t.Fatalf("baseline record missing config %q", want)
		}
	}
	fused, unfused := runs["xplace"], runs["xplace-unfused"]
	if fused.Iterations != unfused.Iterations {
		t.Fatalf("iteration mismatch: fused %d, unfused %d", fused.Iterations, unfused.Iterations)
	}
	if fused.Launches >= unfused.Launches {
		t.Errorf("operator combination saved nothing: fused %d launches, unfused %d",
			fused.Launches, unfused.Launches)
	}
	if base := runs["baseline"]; base.Launches <= unfused.Launches {
		t.Errorf("autograd baseline launched %d kernels <= unfused Xplace's %d",
			base.Launches, unfused.Launches)
	}

	// The backend ablation rows record which backend produced them, and
	// the float32 trajectory stays within its precision band of the
	// reference at the pinned iteration count.
	if got := runs["xplace-f32"].Backend; got != "float32" {
		t.Errorf("xplace-f32 backend = %q, want float32", got)
	}
	if got := runs["xplace"].Backend; got != "float64" {
		t.Errorf("xplace backend = %q, want float64", got)
	}
	f32, ref := runs["xplace-f32"], runs["xplace"]
	if rel := (f32.HPWL - ref.HPWL) / ref.HPWL; rel > 0.05 || rel < -0.05 {
		t.Errorf("float32 HPWL %v drifted %.2f%% from float64 %v", f32.HPWL, rel*100, ref.HPWL)
	}

	// The poisson512 micro section carries both backends' full and
	// truncated solve timings.
	micro := map[string]bool{}
	for _, m := range rec.Micro {
		micro[m.Backend+"/"+m.Variant] = true
	}
	for _, want := range []string{"float64/full", "float64/truncated", "float32/full", "float32/truncated"} {
		if !micro[want] {
			t.Errorf("micro section missing %q (have %v)", want, micro)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteBenchRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	again, err := obs.ReadBenchRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, again) {
		t.Error("bench record changed across a write/read round trip")
	}
}
