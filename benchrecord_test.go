package xplace

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"xplace/internal/obs"
)

// TestCheckedInBenchRecord validates the committed bench-trajectory
// baseline: it parses under the current schema, carries the three pinned
// configurations, shows the paper's OC saving (the fused config launches
// strictly fewer kernels than the unfused one over the same iterations),
// and survives a write/read round trip unchanged. A schema change that
// breaks this test must re-baseline BENCH_5.json (make bench-trajectory)
// in the same commit.
func TestCheckedInBenchRecord(t *testing.T) {
	fh, err := os.Open("BENCH_5.json")
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rec, err := obs.ReadBenchRecord(fh)
	if err != nil {
		t.Fatal(err)
	}

	runs := map[string]BenchRun{}
	for _, r := range rec.Runs {
		runs[r.Config] = r
	}
	for _, want := range []string{"baseline", "xplace-unfused", "xplace"} {
		if _, ok := runs[want]; !ok {
			t.Fatalf("baseline record missing config %q", want)
		}
	}
	fused, unfused := runs["xplace"], runs["xplace-unfused"]
	if fused.Iterations != unfused.Iterations {
		t.Fatalf("iteration mismatch: fused %d, unfused %d", fused.Iterations, unfused.Iterations)
	}
	if fused.Launches >= unfused.Launches {
		t.Errorf("operator combination saved nothing: fused %d launches, unfused %d",
			fused.Launches, unfused.Launches)
	}
	if base := runs["baseline"]; base.Launches <= unfused.Launches {
		t.Errorf("autograd baseline launched %d kernels <= unfused Xplace's %d",
			base.Launches, unfused.Launches)
	}

	var buf bytes.Buffer
	if err := obs.WriteBenchRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	again, err := obs.ReadBenchRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, again) {
		t.Error("bench record changed across a write/read round trip")
	}
}
