package xplace

import (
	"context"
	"fmt"
	"time"

	"xplace/internal/detail"
	"xplace/internal/kernel"
	"xplace/internal/legal"
	"xplace/internal/placer"
	"xplace/internal/router"
)

// LegalizerKind selects the legalization algorithm.
type LegalizerKind int

const (
	// LegalizeTetris is the greedy interval legalizer (fast).
	LegalizeTetris LegalizerKind = iota
	// LegalizeAbacus is the row-clustering legalizer (better quality).
	LegalizeAbacus
)

// DetailOptions configures detailed placement.
type DetailOptions = detail.Options

// FlowOptions configures the end-to-end flow: GP -> legalization ->
// detailed placement -> optional routability scoring.
type FlowOptions struct {
	// Placement configures the GP engine (DefaultPlacement /
	// BaselinePlacement / custom).
	Placement PlacementOptions
	// Legalizer selects the legalization algorithm.
	Legalizer LegalizerKind
	// Detail configures detailed placement. Set SkipDetail to omit the
	// DP stage entirely.
	Detail     DetailOptions
	SkipDetail bool
	// Route, when non-nil, runs the global router on the final placement
	// (the Table 4 OVFL-5 metric).
	Route *RouteOptions
	// Workers / LaunchOverhead configure the kernel engine (see
	// NewEngine). Ignored when Engine is set.
	Workers        int
	LaunchOverhead time.Duration
	// Engine, when non-nil, is used as-is (its accounting is reset).
	Engine *Engine
	// Progress, when non-nil, receives a Snapshot after every GP
	// iteration (overrides Placement.Progress).
	Progress func(Snapshot)
}

// FlowResult carries every stage's outcome.
type FlowResult struct {
	GP *PlacementResult
	// Positions after each stage (cell centers, original design ids).
	LegalX, LegalY []float64
	FinalX, FinalY []float64
	// HPWL after each stage.
	HPWLGP, HPWLLegal, HPWLFinal float64
	// Stage wall times. GPSim additionally includes the simulated
	// kernel-launch cost (the "GP/s" column of Tables 2 and 4).
	GPTime, LGTime, DPTime time.Duration
	GPSim                  time.Duration
	// Violations is the legality-violation count of the final placement
	// (0 for a correct flow).
	Violations int
	// Route is the routability score (nil unless requested).
	Route *RouteResult
}

// RunFlow executes the full placement flow on a design. The design's
// stored positions are untouched; results are returned in the FlowResult.
func RunFlow(d *Design, opts FlowOptions) (*FlowResult, error) {
	return RunFlowContext(context.Background(), d, opts)
}

// RunFlowContext executes the full placement flow under ctx: cancellation
// is honored between kernel launches during global placement and between
// the flow stages (GP, legalization, detailed placement, routing). On
// cancellation the error wraps ctx.Err() and the placer's arena-backed
// scratch has been returned to the engine.
func RunFlowContext(ctx context.Context, d *Design, opts FlowOptions) (*FlowResult, error) {
	e := opts.Engine
	if e == nil {
		e = kernel.New(kernel.Options{Workers: opts.Workers, LaunchOverhead: opts.LaunchOverhead})
	}
	if opts.Progress != nil {
		opts.Placement.Progress = opts.Progress
	}
	p, err := placer.New(d, e, opts.Placement)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	res := &FlowResult{}
	gp, err := p.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("xplace: global placement: %w", err)
	}
	res.GP = gp
	res.GPTime = gp.WallTime
	res.GPSim = gp.SimTime
	res.HPWLGP = gp.HPWL

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xplace: legalization: %w", err)
	}
	lgStart := time.Now()
	var lx, ly []float64
	switch opts.Legalizer {
	case LegalizeAbacus:
		lx, ly, err = legal.Abacus(d, gp.X, gp.Y)
	default:
		lx, ly, err = legal.Tetris(d, gp.X, gp.Y)
	}
	if err != nil {
		return nil, fmt.Errorf("xplace: legalization: %w", err)
	}
	res.LGTime = time.Since(lgStart)
	res.LegalX, res.LegalY = lx, ly
	res.HPWLLegal = d.HPWL(lx, ly)

	res.FinalX, res.FinalY = lx, ly
	if !opts.SkipDetail {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xplace: detailed placement: %w", err)
		}
		dpStart := time.Now()
		res.FinalX, res.FinalY = detail.Run(d, lx, ly, opts.Detail)
		res.DPTime = time.Since(dpStart)
	}
	res.HPWLFinal = d.HPWL(res.FinalX, res.FinalY)
	res.Violations = len(legal.Check(d, res.FinalX, res.FinalY))

	if opts.Route != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xplace: routing: %w", err)
		}
		res.Route = router.Route(d, res.FinalX, res.FinalY, *opts.Route)
	}
	return res, nil
}

// Legalize runs just the legalization stage.
func Legalize(d *Design, x, y []float64, kind LegalizerKind) ([]float64, []float64, error) {
	if kind == LegalizeAbacus {
		return legal.Abacus(d, x, y)
	}
	return legal.Tetris(d, x, y)
}

// DetailedPlace runs just the detailed-placement stage on a legal
// placement.
func DetailedPlace(d *Design, x, y []float64, opts DetailOptions) ([]float64, []float64) {
	return detail.Run(d, x, y, opts)
}

// CheckLegal returns the number of legality violations of a placement.
func CheckLegal(d *Design, x, y []float64) int { return len(legal.Check(d, x, y)) }
