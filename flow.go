package xplace

import (
	"context"
	"time"

	"xplace/internal/detail"
	"xplace/internal/legal"
)

// LegalizerKind selects the legalization algorithm.
type LegalizerKind int

const (
	// LegalizeTetris is the greedy interval legalizer (fast).
	LegalizeTetris LegalizerKind = iota
	// LegalizeAbacus is the row-clustering legalizer (better quality).
	LegalizeAbacus
)

// DetailOptions configures detailed placement.
type DetailOptions = detail.Options

// FlowOptions configures the end-to-end flow: GP -> legalization ->
// detailed placement -> optional routability scoring.
type FlowOptions struct {
	// Placement configures the GP engine (DefaultPlacement /
	// BaselinePlacement / custom).
	Placement PlacementOptions
	// Legalizer selects the legalization algorithm.
	Legalizer LegalizerKind
	// Detail configures detailed placement. Set SkipDetail to omit the
	// DP stage entirely.
	Detail     DetailOptions
	SkipDetail bool
	// Route, when non-nil, runs the global router on the final placement
	// (the Table 4 OVFL-5 metric).
	Route *RouteOptions
	// Workers / LaunchOverhead configure the kernel engine (see
	// NewEngine). Ignored when Engine is set.
	Workers        int
	LaunchOverhead time.Duration
	// Engine, when non-nil, is used as-is (its accounting is reset).
	Engine *Engine
	// Progress, when non-nil, receives a Snapshot after every GP
	// iteration (overrides Placement.Progress).
	Progress func(Snapshot)
}

// FlowResult carries every stage's outcome.
type FlowResult struct {
	GP *PlacementResult
	// Positions after each stage (cell centers, original design ids).
	LegalX, LegalY []float64
	FinalX, FinalY []float64
	// HPWL after each stage.
	HPWLGP, HPWLLegal, HPWLFinal float64
	// Stage wall times. GPSim additionally includes the simulated
	// kernel-launch cost (the "GP/s" column of Tables 2 and 4).
	GPTime, LGTime, DPTime time.Duration
	GPSim                  time.Duration
	// Violations is the legality-violation count of the final placement
	// (0 for a correct flow).
	Violations int
	// Route is the routability score (nil unless requested).
	Route *RouteResult
}

// RunFlow executes the full placement flow on a design. The design's
// stored positions are untouched; results are returned in the FlowResult.
func RunFlow(d *Design, opts FlowOptions) (*FlowResult, error) {
	return RunFlowContext(context.Background(), d, opts)
}

// RunFlowContext executes the full placement flow under ctx: cancellation
// is honored between kernel launches during global placement and between
// the flow stages (GP, legalization, detailed placement, routing). On
// cancellation the error wraps ctx.Err() and the placer's arena-backed
// scratch has been returned to the engine.
//
// It is a thin wrapper over Session.Flow: a temporary Session is built
// from FlowOptions (Engine when set, else a fresh engine from
// Workers/LaunchOverhead) and closed before returning, so an engine this
// call creates is always released; an engine supplied via opts.Engine is
// used as-is and never closed.
func RunFlowContext(ctx context.Context, d *Design, opts FlowOptions) (*FlowResult, error) {
	var sopts []Option
	if opts.Engine != nil {
		sopts = append(sopts, WithEngine(opts.Engine))
	} else {
		sopts = append(sopts, WithEngineOptions(opts.Workers, opts.LaunchOverhead))
	}
	s := NewSession(sopts...)
	defer s.Close()
	return s.Flow(ctx, d, opts)
}

// Legalize runs just the legalization stage.
func Legalize(d *Design, x, y []float64, kind LegalizerKind) ([]float64, []float64, error) {
	if kind == LegalizeAbacus {
		return legal.Abacus(d, x, y)
	}
	return legal.Tetris(d, x, y)
}

// DetailedPlace runs just the detailed-placement stage on a legal
// placement.
func DetailedPlace(d *Design, x, y []float64, opts DetailOptions) ([]float64, []float64) {
	return detail.Run(d, x, y, opts)
}

// CheckLegal returns the number of legality violations of a placement.
func CheckLegal(d *Design, x, y []float64) int { return len(legal.Check(d, x, y)) }
