package xplace

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"xplace/internal/backend"
	"xplace/internal/detail"
	"xplace/internal/kernel"
	"xplace/internal/legal"
	"xplace/internal/nn"
	"xplace/internal/obs"
	"xplace/internal/placer"
	"xplace/internal/router"
)

// Observability handles, re-exported for API users.
type (
	// Tracer records operator spans and kernel launches, exportable as
	// Chrome trace_event JSON (WriteChromeTrace). A nil *Tracer is the
	// disabled tracer: every method no-ops.
	Tracer = obs.Tracer
	// MetricsRegistry is a typed metrics registry with Prometheus text
	// exposition (WritePrometheus). A nil *MetricsRegistry is disabled.
	MetricsRegistry = obs.Registry
	// BenchRecord is the machine-readable bench-trajectory record emitted
	// by `xbench -json` (the BENCH_*.json schema).
	BenchRecord = obs.BenchRecord
	// BenchRun is one configuration's entry in a BenchRecord.
	BenchRun = obs.BenchRun
)

// NewTracer returns an enabled tracer with its epoch pinned to now.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Session is the package's run facade: it owns an engine (created lazily,
// or supplied with WithEngine) plus the observability wiring — tracer,
// metrics registry, progress hook — and threads them through every
// placement or flow it runs. All entry points (Place, PlaceContext,
// RunFlow, RunFlowContext) are thin wrappers over one Session path, so
// there is a single place where engine lifetime and instrumentation are
// decided.
//
// Engine ownership: a Session that creates its own engine (no WithEngine)
// closes it in Close; a caller-supplied engine is NEVER closed by the
// session — whoever built it keeps that responsibility. Always `defer
// s.Close()`; it is idempotent and cheap when there is nothing to do.
//
// A Session is safe for sequential reuse (several Place/Flow calls share
// the warm engine); concurrent runs need one Session per goroutine or a
// serve.Scheduler.
type Session struct {
	mu       sync.Mutex
	eng      *kernel.Engine
	ownsEng  bool
	workers  int
	overhead time.Duration
	backend  backend.Backend
	strategy placer.Strategy
	predict  placer.FieldPredictor
	tracer   *obs.Tracer
	metrics  *obs.Registry
	progress func(Snapshot)
	closed   bool
}

// Option configures a Session (functional options).
type Option func(*Session)

// WithEngine runs the session on a caller-owned engine. The session will
// not Close it; the caller keeps the engine's lifetime.
func WithEngine(e *Engine) Option {
	return func(s *Session) { s.eng, s.ownsEng = e, false }
}

// WithEngineOptions sets the worker count and simulated launch overhead of
// the engine the session creates lazily (ignored after WithEngine).
// workers <= 0 selects NumCPU; overhead < 0 the default launch cost, 0
// disables the launch-cost model.
func WithEngineOptions(workers int, overhead time.Duration) Option {
	return func(s *Session) { s.workers, s.overhead = workers, overhead }
}

// WithBackend selects the compute backend (element type + kernel bodies)
// of every run the session drives: Float64Backend() is the exact,
// bit-stable reference; Float32Backend() the reduced-precision fast path.
// A per-run PlacementOptions.Backend wins over the session's choice. The
// session also records the backend on its engine (Engine.SetBackend), so
// other consumers sharing the engine can see the session default.
func WithBackend(b ComputeBackend) Option {
	return func(s *Session) { s.backend = b }
}

// WithBackendName is WithBackend by registry name ("float64", "float32");
// it is what the CLI -backend flag maps to. Unknown names return an error
// listing the registered backends. The empty name selects the process
// default (the XPLACE_BACKEND environment variable, else the reference).
func WithBackendName(name string) (Option, error) {
	b, err := backend.Lookup(name)
	if err != nil {
		return nil, err
	}
	return WithBackend(b), nil
}

// WithStrategy selects the global-placement strategy of every run the
// session drives (StrategyNesterov gradient flow, StrategyLBUB
// lower/upper-bound alternation). A per-run PlacementOptions.Strategy
// other than the default wins over the session's choice.
func WithStrategy(st Strategy) Option {
	return func(s *Session) { s.strategy = st }
}

// WithStrategyName is WithStrategy by name ("nesterov", "lbub"); it is
// what the CLI -strategy flag maps to. Unknown names return an error
// listing the selectable strategies. The empty name selects the default.
func WithStrategyName(name string) (Option, error) {
	st, err := placer.ParseStrategy(name)
	if err != nil {
		return nil, err
	}
	return WithStrategy(st), nil
}

// WithFieldPredictor blends p's predicted field into the early placement
// stage of every run the session drives (the Xplace-NN flow, §3.3): the
// predicted Ex/Ey replace a share σ(ω) of the numerical field while the
// density is still spreading, and the run hands off to the pure numerical
// flow as σ decays. A per-run PlacementOptions.Predictor wins over the
// session's choice.
func WithFieldPredictor(p FieldPredictor) Option {
	return func(s *Session) { s.predict = p }
}

// WithFieldModel is WithFieldPredictor from a model artifact on disk; it
// is what the CLI -model flags map to. The artifact is opened, integrity-
// checked and loaded HERE — a missing file, foreign format (ErrNotModel),
// unsupported version (ErrModelVersion) or corrupt payload
// (ErrModelCorrupt) is a typed error at option-construction time, never a
// failure mid-placement.
func WithFieldModel(path string) (Option, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opt, err := WithFieldModelReader(f)
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	return opt, nil
}

// WithFieldModelReader is WithFieldModel for an already-open artifact
// stream (an embedded model, a registry blob). Load errors carry the nn
// package's typed sentinels (ErrNotModel, ErrModelVersion,
// ErrModelCorrupt).
func WithFieldModelReader(r io.Reader) (Option, error) {
	m, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	return WithFieldPredictor(&nn.Predictor{M: m}), nil
}

// WithTracer records every kernel launch, operator group and flow stage of
// the session's runs on t (attach is per-run: the engine's tracer is set
// for the duration of Place/Flow and detached after, so a shared engine
// does not keep tracing for other users).
func WithTracer(t *Tracer) Option {
	return func(s *Session) { s.tracer = t }
}

// WithMetrics publishes the placer's paper-optimization series (see
// DESIGN.md) to m.
func WithMetrics(m *MetricsRegistry) Option {
	return func(s *Session) { s.metrics = m }
}

// WithProgress receives a Snapshot after every completed GP iteration
// (unless the per-run PlacementOptions.Progress is set, which wins).
func WithProgress(fn func(Snapshot)) Option {
	return func(s *Session) { s.progress = fn }
}

// NewSession builds a session. With no options it lazily creates a
// default engine (NumCPU workers, default launch overhead) that Close
// tears down.
func NewSession(opts ...Option) *Session {
	s := &Session{overhead: -1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Engine returns the session's engine, creating it on first use when none
// was supplied.
func (s *Session) Engine() *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		s.eng = kernel.New(kernel.Options{Workers: s.workers, LaunchOverhead: s.overhead})
		s.ownsEng = true
	}
	if s.backend != nil && s.eng.Backend() == nil {
		s.eng.SetBackend(s.backend)
	}
	return s.eng
}

// Backend returns the session's configured compute backend (nil when the
// session follows the process default).
func (s *Session) Backend() ComputeBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend
}

// Close releases the session: an engine the session created is Closed
// (worker pool torn down, arena dropped); a caller-supplied engine is left
// untouched. Idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	eng, owns := s.eng, s.ownsEng
	s.eng = nil
	closed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !closed && owns && eng != nil {
		eng.Close()
	}
}

// instrument injects the session's observability wiring into run options;
// per-run settings win over session-level ones.
func (s *Session) instrument(opts placer.Options) placer.Options {
	if opts.Progress == nil {
		opts.Progress = s.progress
	}
	if opts.Tracer == nil {
		opts.Tracer = s.tracer
	}
	if opts.Metrics == nil {
		opts.Metrics = s.metrics
	}
	if opts.Backend == nil {
		opts.Backend = s.backend
	}
	if opts.Predictor == nil {
		opts.Predictor = s.predict
	}
	if opts.Strategy == placer.StrategyNesterov {
		opts.Strategy = s.strategy
	}
	return opts
}

// attachTracer points the engine at the run's tracer for the duration of
// one run; the returned detach must be deferred.
func (s *Session) attachTracer(eng *Engine, t *obs.Tracer) (detach func()) {
	if t == nil {
		return func() {}
	}
	eng.SetTracer(t)
	return func() { eng.SetTracer(nil) }
}

// Place runs global placement to convergence under ctx on the session's
// engine, with the session's observability wiring. On cancellation or
// deadline the error is ctx.Err() and the result holds the partial
// placement (see placer.RunContext).
func (s *Session) Place(ctx context.Context, d *Design, opts PlacementOptions) (*PlacementResult, error) {
	opts = s.instrument(opts)
	eng := s.Engine()
	p, err := placer.New(d, eng, opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	defer s.attachTracer(eng, opts.Tracer)()
	return p.RunContext(ctx)
}

// Flow executes the full placement flow (GP -> legalization -> detailed
// placement -> optional routing) under ctx on the session's engine.
// FlowOptions.Engine/Workers/LaunchOverhead are ignored here — the
// session decides the engine; use the RunFlow wrappers (or session
// options) to configure it. Stage boundaries are recorded as flow-stage
// spans when the session has a tracer.
func (s *Session) Flow(ctx context.Context, d *Design, opts FlowOptions) (*FlowResult, error) {
	if opts.Progress != nil {
		opts.Placement.Progress = opts.Progress
	}
	popts := s.instrument(opts.Placement)
	eng := s.Engine()
	p, err := placer.New(d, eng, popts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	defer s.attachTracer(eng, popts.Tracer)()
	tr := popts.Tracer

	res := &FlowResult{}
	stageStart := time.Now()
	simStart := eng.SimulatedTime()
	stage := func(name string) {
		if tr != nil {
			tr.Span(name, obs.CatFlow, stageStart, time.Since(stageStart),
				simStart, eng.SimulatedTime()-simStart, -1)
		}
		stageStart = time.Now()
		simStart = eng.SimulatedTime()
	}

	gp, err := p.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("xplace: global placement: %w", err)
	}
	stage("flow.gp")
	res.GP = gp
	res.GPTime = gp.WallTime
	res.GPSim = gp.SimTime
	res.HPWLGP = gp.HPWL

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xplace: legalization: %w", err)
	}
	lgStart := time.Now()
	var lx, ly []float64
	switch opts.Legalizer {
	case LegalizeAbacus:
		lx, ly, err = legal.Abacus(d, gp.X, gp.Y)
	default:
		lx, ly, err = legal.Tetris(d, gp.X, gp.Y)
	}
	if err != nil {
		return nil, fmt.Errorf("xplace: legalization: %w", err)
	}
	stage("flow.legalize")
	res.LGTime = time.Since(lgStart)
	res.LegalX, res.LegalY = lx, ly
	res.HPWLLegal = d.HPWL(lx, ly)

	res.FinalX, res.FinalY = lx, ly
	if !opts.SkipDetail {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xplace: detailed placement: %w", err)
		}
		dpStart := time.Now()
		res.FinalX, res.FinalY = detail.Run(d, lx, ly, opts.Detail)
		res.DPTime = time.Since(dpStart)
		stage("flow.detail")
	}
	res.HPWLFinal = d.HPWL(res.FinalX, res.FinalY)
	res.Violations = len(legal.Check(d, res.FinalX, res.FinalY))

	if opts.Route != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xplace: routing: %w", err)
		}
		res.Route = router.Route(d, res.FinalX, res.FinalY, *opts.Route)
		stage("flow.route")
	}
	return res, nil
}
