package xplace

import "testing"

func TestRoutabilityFlowReducesCongestion(t *testing.T) {
	d, err := GenerateBenchmark("fft_1", 0.03, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := RoutabilityOptions{
		Flow: FlowOptions{
			Placement: DefaultPlacement(),
			Legalizer: LegalizeTetris,
		},
		Route:          RouteOptions{Grid: 32, Capacity: 2},
		MaxPasses:      2,
		TargetOverflow: 0,
	}
	opts.Flow.Placement.Sched.MaxIter = 400
	res, err := RunRoutabilityFlow(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 1 || res.Initial == nil || res.Final == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	// Final placement legal with ORIGINAL sizes.
	if v := CheckLegal(d, res.X, res.Y); v != 0 {
		t.Errorf("%d violations in routability result", v)
	}
	if res.Passes > 1 {
		if res.InflatedCells == 0 {
			t.Error("multiple passes but no inflated cells")
		}
		if res.Final.Top5Overflow > res.Initial.Top5Overflow*1.05 {
			t.Errorf("congestion got worse: %.3f -> %.3f",
				res.Initial.Top5Overflow, res.Final.Top5Overflow)
		}
		t.Logf("OVFL-5 %.3f -> %.3f over %d passes (%d cells inflated), HPWL %.4g",
			res.Initial.Top5Overflow, res.Final.Top5Overflow,
			res.Passes, res.InflatedCells, res.HPWL)
	} else {
		t.Logf("already under target after one pass (OVFL-5 %.3f)", res.Final.Top5Overflow)
	}
}

func TestRoutabilityFlowStopsAtTarget(t *testing.T) {
	d, err := GenerateBenchmark("fft_2", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := RoutabilityOptions{
		Flow: FlowOptions{
			Placement: DefaultPlacement(),
			Legalizer: LegalizeTetris,
		},
		// Generous capacity: no congestion, so one pass suffices.
		Route:          RouteOptions{Grid: 32, Capacity: 50},
		MaxPasses:      3,
		TargetOverflow: 0.5,
	}
	opts.Flow.Placement.Sched.MaxIter = 300
	res, err := RunRoutabilityFlow(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Errorf("uncongested design should stop after 1 pass, ran %d", res.Passes)
	}
	if res.InflatedCells != 0 {
		t.Errorf("no inflation expected, got %d", res.InflatedCells)
	}
}
