package xplace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const loadTestLEF = `MACRO INV
  CLASS CORE ;
  SIZE 2 BY 8 ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER metal1 ;
      RECT 0.2 3.0 0.6 5.0 ;
    END
  END A
  PIN Z
    DIRECTION OUTPUT ;
    PORT
      LAYER metal1 ;
      RECT 1.4 3.0 1.8 5.0 ;
    END
  END Z
END INV
`

const loadTestDEF = `VERSION 5.8 ;
DESIGN toy ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 200 160 ) ;
ROW r0 core 0 0 N DO 100 BY 1 STEP 2 0 ;
COMPONENTS 2 ;
- u1 INV + PLACED ( 10 0 ) N ;
- u2 INV + FIXED ( 20 8 ) N ;
END COMPONENTS
NETS 1 ;
- n1 ( u1 Z ) ( u2 A ) ;
END NETS
END DESIGN
`

// TestLoadBookshelfByExtension: Load on a .aux path takes the bookshelf
// path and round-trips a written design.
func TestLoadBookshelfByExtension(t *testing.T) {
	d := sessionTestDesign(t, 120, 41)
	dir := t.TempDir()
	if err := WriteBookshelf(dir, "toy", d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(filepath.Join(dir, "toy.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != d.NumCells() || got.NumNets() != d.NumNets() {
		t.Errorf("round trip: %d cells / %d nets, want %d / %d",
			got.NumCells(), got.NumNets(), d.NumCells(), d.NumNets())
	}
}

// TestLoadDEF: Load detects DEF by extension and by content sniffing, and
// accepts the LEF library either as a path (WithLEF) or parsed
// (WithLEFLibrary).
func TestLoadDEF(t *testing.T) {
	dir := t.TempDir()
	lefPath := filepath.Join(dir, "lib.lef")
	defPath := filepath.Join(dir, "toy.def")
	sniffPath := filepath.Join(dir, "design_no_ext")
	for path, body := range map[string]string{
		lefPath: loadTestLEF, defPath: loadTestDEF, sniffPath: loadTestDEF,
	} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d, err := Load(defPath, WithLEF(lefPath))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() == 0 || d.NumNets() != 1 {
		t.Errorf("DEF load: %d cells / %d nets", d.NumCells(), d.NumNets())
	}

	lib, err := LoadLEF(lefPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(defPath, WithLEFLibrary(lib)); err != nil {
		t.Errorf("WithLEFLibrary: %v", err)
	}

	// Content sniffing on an extensionless DEF.
	if _, err := Load(sniffPath, WithLEFLibrary(lib)); err != nil {
		t.Errorf("sniffed DEF: %v", err)
	}

	// DEF without a library is a descriptive error, not a panic.
	if _, err := Load(defPath); err == nil || !strings.Contains(err.Error(), "LEF") {
		t.Errorf("missing-LEF error = %v", err)
	}
}

// TestLoadRejections: .lef paths point to LoadLEF, unknown formats and
// missing files error out cleanly.
func TestLoadRejections(t *testing.T) {
	dir := t.TempDir()
	lefPath := filepath.Join(dir, "lib.lef")
	if err := os.WriteFile(lefPath, []byte(loadTestLEF), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(lefPath); err == nil || !strings.Contains(err.Error(), "LoadLEF") {
		t.Errorf("LEF-path error = %v", err)
	}

	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("nothing placement-shaped here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(junk); err == nil || !strings.Contains(err.Error(), "detect") {
		t.Errorf("unknown-format error = %v", err)
	}

	if _, err := Load(filepath.Join(dir, "absent.aux")); err == nil {
		t.Error("missing .aux did not error")
	}
	if _, err := Load(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing extensionless file did not error")
	}
}

// TestDeprecatedReadersStillWork: the deprecation policy keeps the old
// entry points functional — ReadBookshelf must agree with Load.
func TestDeprecatedReadersStillWork(t *testing.T) {
	d := sessionTestDesign(t, 120, 42)
	dir := t.TempDir()
	if err := WriteBookshelf(dir, "old", d); err != nil {
		t.Fatal(err)
	}
	aux := filepath.Join(dir, "old.aux")
	a, err := ReadBookshelf(aux)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(aux)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCells() != b.NumCells() || a.NumNets() != b.NumNets() {
		t.Error("ReadBookshelf and Load disagree")
	}
}
