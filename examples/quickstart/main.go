// Quickstart: build a small design with the public API, run Xplace global
// placement, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xplace"
)

func main() {
	// A 64x64 die with 16 rows of height 4.
	d := xplace.NewDesign("quickstart", 64, 64)
	for y := 0.0; y+4 <= 64; y += 4 {
		d.Rows = append(d.Rows, xplace.Row{Y: y, X0: 0, X1: 64, Height: 4, SiteWidth: 1})
	}

	// A 10x10 grid of cells, connected to their right and lower
	// neighbours — the placer should recover the grid structure.
	const n = 10
	ids := make([]int, 0, n*n)
	for i := 0; i < n*n; i++ {
		// Initial positions scattered pseudo-randomly.
		x := float64((i*37)%61) + 1
		y := float64((i*53)%59) + 2
		ids = append(ids, d.AddCell(fmt.Sprintf("c%d", i), 2, 4, x, y, xplace.Movable))
	}
	for i := 0; i < n*n; i++ {
		if (i+1)%n != 0 {
			d.AddNet(fmt.Sprintf("h%d", i))
			d.AddPin(ids[i], 0, 0)
			d.AddPin(ids[i+1], 0, 0)
		}
		if i+n < n*n {
			d.AddNet(fmt.Sprintf("v%d", i))
			d.AddPin(ids[i], 0, 0)
			d.AddPin(ids[i+n], 0, 0)
		}
	}
	if err := d.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d cells, %d nets, initial HPWL %.1f\n",
		d.NumCells(), d.NumNets(), d.HPWL(nil, nil))

	// Global placement with the paper's full Xplace configuration.
	opts := xplace.DefaultPlacement()
	opts.GridSize = 32
	res, err := xplace.Place(d, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global placement: HPWL %.1f, overflow %.3f, %d iterations (%v wall, %v simulated)\n",
		res.HPWL, res.Overflow, res.Iterations, res.WallTime.Round(1e6), res.SimTime.Round(1e6))

	// Legalize and refine.
	lx, ly, err := xplace.Legalize(d, res.X, res.Y, xplace.LegalizeAbacus)
	if err != nil {
		log.Fatal(err)
	}
	fx, fy := xplace.DetailedPlace(d, lx, ly, xplace.DetailOptions{})
	fmt.Printf("legalized + detailed: HPWL %.1f, %d violations\n",
		d.HPWL(fx, fy), xplace.CheckLegal(d, fx, fy))
}
