// ISPD 2005 flow: generate a scaled adaptec1, run the full Xplace flow
// (GP -> legalization -> detailed placement) against the DREAMPlace-style
// baseline, and print a Table 2-style comparison row.
//
//	go run ./examples/ispd2005flow
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"xplace"
)

func main() {
	d, err := xplace.GenerateBenchmark("adaptec1", 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("adaptec1 (scaled): %d movable cells, %d fixed, %d nets, util %.2f\n\n",
		st.Movable, st.Fixed, st.Nets, st.Util)

	run := func(label string, p xplace.PlacementOptions) *xplace.FlowResult {
		fr, err := xplace.RunFlow(d, xplace.FlowOptions{
			Placement: p,
			Legalizer: xplace.LegalizeTetris,
			// Simulated-GPU regime: kernel launches cost 150us on the
			// simulated clock (see DESIGN.md), the balance the paper's
			// speedups live in.
			LaunchOverhead: 150 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s HPWL %.4g (GP %.4g)  GP %6.2fs sim  DP %5.2fs  iters %d  violations %d\n",
			label, fr.HPWLFinal, fr.HPWLGP, fr.GPSim.Seconds(),
			(fr.LGTime + fr.DPTime).Seconds(), fr.GP.Iterations, fr.Violations)
		return fr
	}

	base := run("DREAMPlace", xplace.BaselinePlacement())
	xp := run("Xplace", xplace.DefaultPlacement())

	fmt.Printf("\nGP speedup: %.2fx at HPWL ratio %.4f (paper: ~1.6x at ~1.003)\n",
		base.GPSim.Seconds()/xp.GPSim.Seconds(), base.HPWLFinal/xp.HPWLFinal)

	// Persist the placed design as a bookshelf .pl.
	out := filepath.Join(os.TempDir(), "adaptec1_placed.pl")
	if err := xplace.WritePlacementPl(out, d, xp.FinalX, xp.FinalY); err != nil {
		log.Fatal(err)
	}
	fmt.Println("placed positions written to", out)
}
