// Neural extension (Xplace-NN, §3.3): train a Fourier neural operator on
// random density maps, plug it into the placer as a field predictor, and
// compare against plain Xplace on the same design.
//
//	go run ./examples/neural
package main

import (
	"fmt"
	"log"

	"xplace"
)

func main() {
	// A compact FNO (the paper-scale config is xplace.DefaultModelConfig;
	// this one trains in seconds on a laptop).
	cfg := xplace.ModelConfig{Width: 6, Modes: 4, Layers: 2, Seed: 1}
	m := xplace.NewModel(cfg)
	fmt.Printf("FNO: %d parameters (paper-scale default: %d)\n",
		m.ParamCount(), xplace.NewModel(xplace.DefaultModelConfig()).ParamCount())

	// Training data: random density maps labelled with the numerically
	// solved electric field — no placement benchmarks needed (§3.3).
	train := xplace.GenerateTrainingSamples(24, 32, 32, 1)
	test := xplace.GenerateTrainingSamples(8, 32, 32, 999)
	fmt.Printf("untrained rel-L2 on held-out maps: %.3f\n", m.Evaluate(test))
	m.Train(train, xplace.TrainOptions{Epochs: 25, LR: 2e-3, Seed: 1,
		Log: func(ep int, loss float64) {
			if ep%5 == 0 {
				fmt.Printf("  epoch %2d  rel-L2 %.4f\n", ep, loss)
			}
		}})
	fmt.Printf("trained   rel-L2 on held-out maps: %.3f (y-field via flip: %.3f)\n\n",
		m.Evaluate(test), m.EvaluateFlipY(test))

	// Place the same design with and without the neural field.
	d, err := xplace.GenerateBenchmark("fft_1", 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	place := func(label string, pred bool) float64 {
		opts := xplace.DefaultPlacement()
		if pred {
			opts.Predictor = xplace.NewFieldPredictor(m)
		}
		res, err := xplace.Place(d, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s HPWL %.5g  overflow %.3f  iters %d\n",
			label, res.HPWL, res.Overflow, res.Iterations)
		return res.HPWL
	}
	plain := place("Xplace", false)
	neural := place("Xplace-NN", true)
	fmt.Printf("\nHPWL ratio Xplace-NN / Xplace = %.4f (paper: ~0.999)\n", neural/plain)
}
