// Bookshelf I/O: write a design in the ISPD 2005 bookshelf format, read
// it back from the .aux, place it, and emit the placed .pl — the external
// interchange loop of a real placement flow.
//
//	go run ./examples/bookshelf
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xplace"
)

func main() {
	dir, err := os.MkdirTemp("", "xplace-bookshelf-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Synthesize a small design and write it out as bookshelf files.
	orig, err := xplace.GenerateBenchmark("pci_bridge32_a", 0.02, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := xplace.WriteBookshelf(dir, "pci_bridge32_a", orig); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote bookshelf files to", dir)
	for _, ext := range []string{".aux", ".nodes", ".nets", ".pl", ".scl"} {
		fi, err := os.Stat(filepath.Join(dir, "pci_bridge32_a"+ext))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8d bytes\n", fi.Name(), fi.Size())
	}

	// Read it back, as an external tool would.
	d, err := xplace.ReadBookshelf(filepath.Join(dir, "pci_bridge32_a.aux"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread back: %d cells, %d nets, %d pins, HPWL %.4g\n",
		d.NumCells(), d.NumNets(), d.NumPins(), d.HPWL(nil, nil))

	// Place and write the result.
	fr, err := xplace.RunFlow(d, xplace.FlowOptions{
		Placement: xplace.DefaultPlacement(),
		Legalizer: xplace.LegalizeTetris,
	})
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(dir, "pci_bridge32_a_placed.pl")
	if err := xplace.WritePlacementPl(out, d, fr.FinalX, fr.FinalY); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed: HPWL %.4g -> %.4g (legal, %d violations), wrote %s\n",
		d.HPWL(nil, nil), fr.HPWLFinal, fr.Violations, filepath.Base(out))
}
