module xplace

go 1.22
